//! Protocol-driving service: the full-mesh node runners.
//!
//! [`run_node`] drives one protocol instance; [`run_instances`] drives any
//! number of independent instances (one per oracle asset in a multi-feed
//! deployment) multiplexed over a single mesh; [`run_epoch_service`]
//! drives a long-lived epoch pipeline. The service layer owns the
//! instance state and the run lifecycle (start, dispatch, linger, drain)
//! and delegates wire concerns downward: per-peer framing, batching, and
//! flush policy to [`session`](crate::session), sockets and read/write
//! loops to [`transport`](crate::transport).
//!
//! # The receive hot path
//!
//! Inbound frames take a zero-copy, optionally sharded path:
//!
//! 1. a transport read loop verifies the tag and validates the batch
//!    structure **borrowed** (no per-entry allocation), then ships the
//!    whole body as one refcounted buffer ([`VerifiedFrame`]);
//! 2. with [`RunOptions::recv_shards`] > 1, the read loop routes the
//!    frame to the dispatch worker(s) owning its entries — the stable
//!    [`InstanceId::shard`] mapping, identical to the simulator's — and
//!    each worker owns its instances outright, so no lock sits on the
//!    per-entry path;
//! 3. workers re-split the verified body (structure walk, no MAC) and
//!    feed payload slices straight to the protocol state machines;
//!    outbound bursts flow back to the session layer, which accumulates
//!    and flushes them under the run's [`FlushPolicy`].
//!
//! # The send hot path
//!
//! Outbound bursts take the mirrored, optionally sharded path: the
//! service loop routes each step's envelopes to the session layer's
//! egress lanes ([`RunOptions::send_shards`]), where batching, flush
//! triggers, frame encode, and HMAC all run on per-lane tasks instead of
//! inline on the select loop — the loop itself never encodes or MACs a
//! frame. Lanes own whole `(destination, receive shard)` batches, so
//! the frames on the wire are identical for any lane count.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use delphi_crypto::Keychain;
use delphi_primitives::{
    merge_epoch_stats, AgreementId, Envelope, EpochEvent, EpochMux, EpochOutcome, EpochShard,
    EpochStats, EpochStatsCell, FlushPolicy, InstanceId, Protocol,
};
use tokio::net::TcpListener;
use tokio::sync::mpsc;

use crate::frame::split_verified_body;
use crate::session::SessionSet;
use crate::transport::{spawn_acceptor, Counters, NetStats, VerifiedFrame, MAX_RECV_SHARDS};

/// Network runner failure.
#[derive(Debug)]
pub enum NetError {
    /// Listener could not be bound or a socket operation failed fatally.
    Io(std::io::Error),
    /// The address list does not match the keychain's deployment size.
    Config(String),
    /// The protocol did not produce an output within the deadline.
    Timeout,
    /// A runner invariant broke (a worker died or reported inconsistent
    /// completion). Surfaced as an error instead of a panic: a node that
    /// panics is a crash fault silently spending the `t < n/3` budget,
    /// while a reported error lets the operator restart the node.
    Internal(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network io error: {e}"),
            NetError::Config(msg) => write!(f, "invalid network configuration: {msg}"),
            NetError::Timeout => write!(f, "protocol did not finish before the deadline"),
            NetError::Internal(msg) => write!(f, "runner invariant broke: {msg}"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Tuning knobs for [`run_node`] / [`run_instances`] /
/// [`run_epoch_service`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// How long to keep serving peers after our own output is ready.
    ///
    /// Asynchronous BFT protocols routinely need messages from already-
    /// finished nodes (quorum amplification); killing the process at
    /// output time can stall slower peers.
    pub linger: Duration,
    /// Initial delay between reconnection attempts while dialing peers
    /// (doubled on consecutive failures up to a bounded backoff).
    pub reconnect_delay: Duration,
    /// Overall deadline for producing an output.
    pub deadline: Duration,
    /// How long shutdown may wait for writer queues to flush to peers.
    pub drain_timeout: Duration,
    /// Whether to coalesce all envelopes of one protocol step per
    /// destination into one batched frame (v2). Off, every envelope pays
    /// its own frame + tag — the v1 cost model, kept for measurement.
    pub batching: bool,
    /// When the session layer flushes accumulated batch entries: per
    /// step, or adaptively on size/time triggers. Applies to both the
    /// one-shot runners and the epoch service.
    pub flush: FlushPolicy,
    /// Receive dispatch shards (clamped to 1..=[`MAX_RECV_SHARDS`]).
    /// With more than one, inbound entries are dispatched to per-shard
    /// workers by the stable [`InstanceId::shard`] /
    /// [`AgreementId::shard`] mapping — the same assignment the
    /// simulator's `recv_shards` models — and each worker owns its
    /// instances' protocol state.
    pub recv_shards: usize,
    /// Egress send lanes (clamped to 1..=[`MAX_RECV_SHARDS`]).
    ///
    /// With more than one, the session layer routes outbound batches to
    /// per-lane workers by receive-shard class (`class % send_shards`),
    /// and each lane runs flush triggers, frame encode, and HMAC on its
    /// own task — so MAC work parallelizes instead of serializing on the
    /// service loop. The wire output is identical for any value (lanes
    /// never split a `(destination, shard)` batch); this is pure send-
    /// side CPU parallelism. Because a lane owns whole shard classes,
    /// send parallelism tops out at `recv_shards`: an unsharded receive
    /// deployment keeps all egress on lane 0.
    pub send_shards: usize,
    /// Capacity (frames) of each peer's outbound writer queue.
    ///
    /// Egress queues are bounded so a slow or unreachable peer cannot
    /// inflate memory without limit; once a peer falls `egress_capacity`
    /// frames behind, further frames to it are dropped and counted in
    /// [`NetStats::dropped_egress`]. Dropping is safe where blocking is
    /// not: a peer slower than the queue is indistinguishable from a
    /// crashed one, and the protocol already tolerates `t < n/3` of
    /// those, while blocking the flush path would let one Byzantine peer
    /// stall progress toward every honest one. Must be at least 1.
    pub egress_capacity: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            linger: Duration::from_millis(500),
            reconnect_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            batching: true,
            flush: FlushPolicy::PerStep,
            recv_shards: 1,
            send_shards: 1,
            egress_capacity: 1024,
        }
    }
}

impl RunOptions {
    /// Builder-style setter for [`RunOptions::linger`].
    pub fn linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Builder-style setter for [`RunOptions::reconnect_delay`].
    pub fn reconnect_delay(mut self, delay: Duration) -> Self {
        self.reconnect_delay = delay;
        self
    }

    /// Builder-style setter for [`RunOptions::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Builder-style setter for [`RunOptions::drain_timeout`].
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Builder-style setter for [`RunOptions::batching`].
    pub fn batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Builder-style setter for [`RunOptions::flush`].
    pub fn flush(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    /// Builder-style setter for [`RunOptions::recv_shards`].
    pub fn recv_shards(mut self, shards: usize) -> Self {
        self.recv_shards = shards;
        self
    }

    /// Builder-style setter for [`RunOptions::send_shards`].
    pub fn send_shards(mut self, shards: usize) -> Self {
        self.send_shards = shards;
        self
    }

    /// Builder-style setter for [`RunOptions::egress_capacity`].
    pub fn egress_capacity(mut self, capacity: usize) -> Self {
        self.egress_capacity = capacity;
        self
    }
}

/// Runs `protocol` over a full TCP mesh until it produces an output.
///
/// Convenience wrapper around [`run_instances`] for the single-instance
/// case; see there for the transport contract.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list,
/// [`NetError::Io`] if the listener cannot be bound, and
/// [`NetError::Timeout`] if no output appears within the deadline.
pub async fn run_node<P>(
    protocol: P,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(P::Output, NetStats), NetError>
where
    P: Protocol + Send + 'static,
    P::Output: Send,
{
    let (mut outputs, stats) = run_instances(vec![protocol], keychain, addrs, opts).await?;
    match outputs.pop() {
        Some(output) => Ok((output, stats)),
        None => Err(NetError::Internal("one instance in, no output out".into())),
    }
}

/// Builds the per-shard ingress channels and the accept loop.
fn open_ingress(
    listener: TcpListener,
    keychain: Arc<Keychain>,
    counters: Arc<Counters>,
    shards: usize,
) -> (Vec<mpsc::Receiver<VerifiedFrame>>, tokio::task::JoinHandle<()>) {
    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel::<VerifiedFrame>(1024);
        txs.push(tx);
        rxs.push(rx);
    }
    let accept_task = spawn_acceptor(listener, keychain, Arc::new(txs), counters);
    (rxs, accept_task)
}

/// Feeds one verified frame's entries to their one-shot instances,
/// collecting each instance's response burst. One-shot runs are epoch 0
/// of a stream: entries for other epochs (a peer running the epoch
/// service) and unknown instance ids are ignored. `owned` maps global
/// instance ids to the instances this dispatcher owns.
fn dispatch_step<P: Protocol>(
    owned: &mut [(u16, P)],
    frame: &VerifiedFrame,
) -> Vec<(InstanceId, Vec<Envelope>)> {
    // The read loop verified and validated the body; this is a pure
    // structural re-split over the shared buffer.
    let Ok((_, entries)) = split_verified_body(&frame.body) else {
        return Vec::new(); // unreachable for verified bodies
    };
    let mut bursts = Vec::new();
    for (id, payload) in entries.iter() {
        if id.epoch.0 != 0 {
            continue;
        }
        // `owned` is built in ascending global-id order, so ownership is
        // a binary search — the per-entry path stays O(log k).
        let Ok(at) = owned.binary_search_by_key(&id.asset.0, |(g, _)| *g) else {
            continue;
        };
        bursts.push((id.asset, owned[at].1.on_message(frame.from, payload)));
    }
    bursts
}

/// What a one-shot dispatch worker reports to the service loop.
enum ShardMsg<O> {
    /// One protocol step's bursts, ready for session routing.
    Step(Vec<(InstanceId, Vec<Envelope>)>),
    /// Every instance this worker owns has an output.
    Done(Vec<(u16, O)>),
}

/// One sharded one-shot dispatch worker: owns its instances outright,
/// consumes verified frames, reports bursts and completion.
async fn instance_shard_worker<P>(
    mut rx: mpsc::Receiver<VerifiedFrame>,
    mut owned: Vec<(u16, P)>,
    out_tx: mpsc::Sender<ShardMsg<P::Output>>,
) where
    P: Protocol + Send + 'static,
    P::Output: Send,
{
    let start: Vec<(InstanceId, Vec<Envelope>)> =
        owned.iter_mut().map(|(i, p)| (InstanceId(*i), p.start())).collect();
    if !start.is_empty() && out_tx.send(ShardMsg::Step(start)).await.is_err() {
        return;
    }
    let mut done_sent = false;
    let check_done = |owned: &[(u16, P)], done_sent: &mut bool| {
        if !*done_sent && owned.iter().all(|(_, p)| p.output().is_some()) {
            *done_sent = true;
            return Some(ShardMsg::Done(
                owned.iter().filter_map(|(i, p)| Some((*i, p.output()?))).collect(),
            ));
        }
        None
    };
    if let Some(done) = check_done(&owned, &mut done_sent) {
        if out_tx.send(done).await.is_err() {
            return;
        }
    }
    // Serve until the ingress closes or the service loop goes away; a
    // worker keeps answering peers after Done (the linger contract).
    while let Some(frame) = rx.recv().await {
        let bursts = dispatch_step(&mut owned, &frame);
        if !bursts.is_empty() && out_tx.send(ShardMsg::Step(bursts)).await.is_err() {
            return;
        }
        if let Some(done) = check_done(&owned, &mut done_sent) {
            if out_tx.send(done).await.is_err() {
                return;
            }
        }
    }
}

/// Runs `instances` — independent protocol instances multiplexed by
/// [`InstanceId`] — over one full TCP mesh until every instance produces
/// an output.
///
/// `addrs[i]` is the listen address of node `i`; this node binds
/// `addrs[keychain.node_id()]` and dials every other address (retrying
/// until peers come up). All traffic is HMAC-authenticated with the
/// pairwise keys in `keychain`; frames that fail authentication are
/// counted and dropped. Instance `i` of the vector is addressed as
/// `InstanceId(i)` on the wire; entries for unknown instances inside an
/// authenticated frame are ignored.
///
/// With [`RunOptions::batching`] on (the default), every envelope produced
/// by one `start()`/`on_message()` step is coalesced into at most one
/// batched frame per destination, and [`RunOptions::flush`] may further
/// accumulate entries across steps (adaptive flushing, size + time
/// triggers). With [`RunOptions::recv_shards`] > 1 the receive path is
/// dispatched across per-shard workers (see the [module docs](self)). On
/// shutdown the runner closes the writer queues and waits (bounded by
/// [`RunOptions::drain_timeout`]) for every queued frame to flush, so a
/// slow peer still receives everything that was sent.
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list, an empty
/// instance vector, or an instance disagreeing on identity;
/// [`NetError::Io`] if the listener cannot be bound; and
/// [`NetError::Timeout`] if outputs are missing at the deadline.
pub async fn run_instances<P>(
    instances: Vec<P>,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<(Vec<P::Output>, NetStats), NetError>
where
    P: Protocol + Send + 'static,
    P::Output: Send,
{
    let me = keychain.node_id();
    let n = keychain.n();
    if addrs.len() != n {
        return Err(NetError::Config(format!("{} addresses for {n} nodes", addrs.len())));
    }
    if instances.is_empty() {
        return Err(NetError::Config("no protocol instances".into()));
    }
    if instances.len() > usize::from(u16::MAX) + 1 {
        return Err(NetError::Config("instance ids are u16".into()));
    }
    for p in &instances {
        if p.n() != n || p.node_id() != me {
            return Err(NetError::Config("protocol identity mismatch".into()));
        }
    }
    if opts.egress_capacity == 0 {
        return Err(NetError::Config("egress_capacity must be at least 1".into()));
    }
    let shards = opts.recv_shards.clamp(1, MAX_RECV_SHARDS);
    let send_shards = opts.send_shards.clamp(1, MAX_RECV_SHARDS);

    let counters = Arc::new(Counters::default());
    let keychain = Arc::new(keychain);
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let (mut in_rxs, accept_task) =
        open_ingress(listener, keychain.clone(), counters.clone(), shards);

    // Outbound: one authenticated session (lazy-dialing write loop) per
    // peer, partitioned across the egress lanes, with this run's
    // batching + flush policy; batches flush per (destination, receive
    // shard) so every frame belongs wholly to one dispatch worker at the
    // receiver, and the owning lane encodes + MACs off this loop.
    let mut sessions = SessionSet::connect(
        keychain.clone(),
        &addrs,
        opts.reconnect_delay,
        counters.clone(),
        opts.batching,
        instances.len() == 1,
        opts.flush,
        shards,
        send_shards,
        opts.egress_capacity,
    );
    let deadline = tokio::time::Instant::now() + opts.deadline;
    let total = instances.len();

    // Partition instances across the dispatch workers by the stable shard
    // mapping (everything lands on worker 0 when unsharded).
    let mut groups: Vec<Vec<(u16, P)>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, p) in instances.into_iter().enumerate() {
        groups[InstanceId(i as u16).shard(shards)].push((i as u16, p));
    }
    let (out_tx, mut out_rx) = mpsc::channel::<ShardMsg<P::Output>>(1024);
    let shard_tasks: Vec<tokio::task::JoinHandle<()>> = in_rxs
        .drain(..)
        .zip(groups)
        .map(|(rx, owned)| tokio::spawn(instance_shard_worker(rx, owned, out_tx.clone())))
        .collect();
    drop(out_tx); // workers hold the only senders

    let abort_all = |sessions: SessionSet, shard_tasks: &[tokio::task::JoinHandle<()>]| {
        accept_task.abort();
        for t in shard_tasks {
            t.abort();
        }
        sessions.abort();
    };

    // Drive: collect worker steps and completions until every instance
    // has an output, flushing per the run's policy.
    let mut outputs: Vec<Option<P::Output>> = (0..total).map(|_| None).collect();
    let mut done_workers = 0usize;
    // Start bursts must not wait for traffic (or for the adaptive flush
    // timer): the first step from every worker flushes immediately. The
    // time trigger itself runs on the egress lanes' own timers — this
    // loop only routes bursts; it never encodes, MACs, or arms a flush.
    let mut start_flushes = shards;
    while done_workers < shards {
        let msg = tokio::select! {
            m = out_rx.recv() => Some(m),
            _ = tokio::time::sleep_until(deadline) => None,
        };
        match msg {
            Some(Some(ShardMsg::Step(bursts))) => {
                sessions.enqueue_step(bursts).await;
                if start_flushes > 0 {
                    start_flushes -= 1;
                    sessions.flush_steps().await;
                }
            }
            Some(Some(ShardMsg::Done(outs))) => {
                for (i, o) in outs {
                    outputs[usize::from(i)] = Some(o);
                }
                done_workers += 1;
            }
            Some(None) => {
                // Every worker exited without completing: the ingress (and
                // with it any chance of progress) is gone.
                abort_all(sessions, &shard_tasks);
                return Err(NetError::Timeout);
            }
            None => {
                abort_all(sessions, &shard_tasks);
                return Err(NetError::Timeout);
            }
        }
    }
    sessions.flush_steps().await;
    let Some(outputs) = outputs.into_iter().collect::<Option<Vec<P::Output>>>() else {
        // A worker reported Done without covering every instance it owns:
        // an invariant break surfaced as an error, not a crash fault.
        abort_all(sessions, &shard_tasks);
        return Err(NetError::Internal("a done worker left an instance without output".into()));
    };

    // Linger: keep relaying worker responses so peers can finish too.
    let linger_end = tokio::time::Instant::now() + opts.linger;
    loop {
        let msg = tokio::select! {
            m = out_rx.recv() => m,
            _ = tokio::time::sleep_until(linger_end) => None,
        };
        match msg {
            Some(ShardMsg::Step(bursts)) => {
                sessions.enqueue_step(bursts).await;
                sessions.flush_steps().await;
            }
            Some(ShardMsg::Done(_)) => {}
            None => break,
        }
    }

    for t in &shard_tasks {
        t.abort();
    }
    sessions.flush_steps().await;
    sessions.shutdown(opts.drain_timeout).await;
    accept_task.abort();

    Ok((outputs, counters.snapshot()))
}

/// What an epoch dispatch worker reports to the service loop.
enum EpochShardMsg<O> {
    /// One pipeline step's bursts (global asset addressing).
    Step(Vec<(AgreementId, Vec<Envelope>)>),
    /// Ordered events this worker's slice emitted since its last report
    /// (shard-local asset order; `lane` selects the merge queue). Sent
    /// live, as epochs resolve — this is what makes the service handle
    /// tailable instead of collect-at-the-end.
    Events {
        /// The worker's merge-lane index (live shards only).
        lane: usize,
        /// The freshly drained slice of the worker's event stream.
        events: Vec<EpochEvent<O>>,
    },
    /// This worker's stream slice has resolved every epoch (all of its
    /// events have been shipped). The epoch-layer *counters* keep moving
    /// while the worker serves lingering peers, so they travel through a
    /// shared [`EpochStatsCell`] instead (snapshot at shutdown).
    Done,
}

/// One sharded epoch dispatch worker: a complete sub-pipeline over its
/// asset slice, publishing its live [`EpochStats`] through `stats_cell`
/// after every frame (late entries served during the linger window must
/// still be counted). A `None` slot (a shard the basket left empty) just
/// drains its ingress so Byzantine traffic addressed there cannot wedge a
/// read loop.
async fn epoch_shard_worker<P>(
    mut rx: mpsc::Receiver<VerifiedFrame>,
    slot: Option<(usize, EpochShard<P>)>,
    out_tx: mpsc::Sender<EpochShardMsg<P::Output>>,
    stats_cell: Arc<EpochStatsCell>,
) where
    P: Protocol + Send + 'static,
    P::Output: Send,
{
    let Some((lane, mut shard)) = slot else {
        while rx.recv().await.is_some() {}
        return;
    };
    let start = shard.start();
    if !start.is_empty() && out_tx.send(EpochShardMsg::Step(start)).await.is_err() {
        return;
    }
    let mut done_sent = false;
    loop {
        let fresh = shard.drain_events();
        if !fresh.is_empty()
            && out_tx.send(EpochShardMsg::Events { lane, events: fresh }).await.is_err()
        {
            return;
        }
        if !done_sent && shard.is_complete() {
            done_sent = true;
            if out_tx.send(EpochShardMsg::Done).await.is_err() {
                return;
            }
        }
        stats_cell.publish(shard.stats());
        let Some(frame) = rx.recv().await else { return };
        let Ok((_, entries)) = split_verified_body(&frame.body) else {
            continue; // unreachable for verified bodies
        };
        // One step per entry — the same step granularity the simulator's
        // `EpochProtocol::on_message` flushes at, so the per-step cost
        // model stays byte-comparable between the two transports.
        for (id, payload) in entries.iter() {
            if !shard.owns(id.asset) {
                continue;
            }
            let bursts = shard.on_entry(frame.from, id, payload);
            if !bursts.is_empty() && out_tx.send(EpochShardMsg::Step(bursts)).await.is_err() {
                return;
            }
        }
    }
}

/// Online cross-shard event merger: per-lane queues of shard-local
/// events, merged into basket-ordered [`EpochEvent`]s as soon as *every*
/// live lane has delivered an epoch. Each lane's stream is strictly
/// epoch-ordered with every epoch present (skips included), so the queue
/// fronts always describe the same epoch. The merge contract matches
/// [`delphi_primitives::merge_epoch_shards`]: an epoch is `Agreed` only
/// when every lane agreed it.
struct EventMerger<O> {
    /// Per-lane global asset ids (ascending), indexed by shard-local id.
    maps: Vec<Vec<InstanceId>>,
    queues: Vec<std::collections::VecDeque<EpochEvent<O>>>,
    assets: u16,
}

impl<O: Clone> EventMerger<O> {
    fn new(maps: Vec<Vec<InstanceId>>, assets: u16) -> EventMerger<O> {
        let queues = maps.iter().map(|_| std::collections::VecDeque::new()).collect();
        EventMerger { maps, queues, assets }
    }

    /// Queues `events` for `lane` and appends every epoch that just
    /// became mergeable to `out`.
    fn push(&mut self, lane: usize, events: Vec<EpochEvent<O>>, out: &mut Vec<EpochEvent<O>>) {
        self.queues[lane].extend(events);
        while self.queues.iter().all(|q| !q.is_empty()) {
            let mut values: Vec<Option<O>> = vec![None; usize::from(self.assets)];
            let mut skipped = false;
            let mut epoch = None;
            for (lane, queue) in self.queues.iter_mut().enumerate() {
                let Some(ev) = queue.pop_front() else {
                    continue; // unreachable: the while guard checked every lane
                };
                debug_assert!(
                    epoch.is_none() || epoch == Some(ev.epoch),
                    "lanes emit aligned epoch streams"
                );
                epoch = Some(ev.epoch);
                match ev.outcome {
                    EpochOutcome::Agreed(vs) => {
                        for (local, v) in vs.into_iter().enumerate() {
                            values[self.maps[lane][local].index()] = Some(v);
                        }
                    }
                    EpochOutcome::Skipped => skipped = true,
                }
            }
            let outcome = if skipped || values.iter().any(Option::is_none) {
                EpochOutcome::Skipped
            } else {
                // The `any(is_none)` arm above makes `flatten` lossless.
                EpochOutcome::Agreed(values.into_iter().flatten().collect())
            };
            let Some(epoch) = epoch else {
                // No lanes at all: nothing mergeable, and looping again
                // on the vacuously-true guard would spin forever.
                break;
            };
            out.push(EpochEvent { epoch, outcome });
        }
    }
}

/// Live observability probe for a running epoch service: cheap coherent
/// snapshots of the epoch-layer counters (one [`EpochStatsCell`] per
/// dispatch worker, merged) and the transport counters. Cloneable and
/// detachable from the [`EpochServiceHandle`], so a stats route or a
/// monitoring thread can read while the service runs — the consolidated
/// accessor that replaces reaching into per-shard cells field by field.
#[derive(Clone)]
pub struct ServiceStats {
    cells: Vec<Arc<EpochStatsCell>>,
    counters: Arc<Counters>,
}

impl ServiceStats {
    /// One coherent copy of the merged epoch-layer counters, readable at
    /// any point of the run (during linger included).
    pub fn epoch_snapshot(&self) -> EpochStats {
        merge_epoch_stats(self.cells.iter().map(|c| c.stats_snapshot()))
    }

    /// The transport counters as of now.
    pub fn net_snapshot(&self) -> NetStats {
        self.counters.snapshot()
    }
}

/// A running epoch service, returned by [`run_epoch_service`]: a live,
/// tailable view of the stream instead of only a collected vector.
///
/// - [`next_event`](EpochServiceHandle::next_event) yields merged,
///   basket-ordered [`EpochEvent`]s as epochs resolve (a serving layer
///   tails this without touching the protocol hot path);
/// - [`stats`](EpochServiceHandle::stats) /
///   [`stats_snapshot`](EpochServiceHandle::stats_snapshot) read live
///   coherent counters;
/// - [`finish`](EpochServiceHandle::finish) awaits the run and returns
///   the complete stream plus final counters — the collected view the
///   old API returned directly.
pub struct EpochServiceHandle<O> {
    events: Option<mpsc::UnboundedReceiver<EpochEvent<O>>>,
    stats: ServiceStats,
    task: tokio::task::JoinHandle<EpochRunResult<O>>,
}

/// What a finished epoch run resolves to: the complete ordered event
/// stream, final epoch counters, and transport counters.
pub type EpochRunResult<O> = Result<(Vec<EpochEvent<O>>, EpochStats, NetStats), NetError>;

impl<O> EpochServiceHandle<O> {
    /// The next merged epoch event, `None` once the stream is complete
    /// (or after [`take_events`](EpochServiceHandle::take_events)).
    pub async fn next_event(&mut self) -> Option<EpochEvent<O>> {
        match self.events.as_mut() {
            Some(rx) => rx.recv().await,
            None => None,
        }
    }

    /// Detaches the live event receiver (for a consumer task that owns
    /// the tail while this handle is kept for `finish`).
    pub fn take_events(&mut self) -> Option<mpsc::UnboundedReceiver<EpochEvent<O>>> {
        self.events.take()
    }

    /// A cloneable live-stats probe (usable after `finish` consumed the
    /// handle).
    pub fn stats(&self) -> ServiceStats {
        self.stats.clone()
    }

    /// One coherent copy of the merged epoch-layer counters, right now.
    pub fn stats_snapshot(&self) -> EpochStats {
        self.stats.epoch_snapshot()
    }

    /// Awaits the run: the complete ordered event stream, final epoch
    /// counters, and transport counters.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if the stream is unresolved at the deadline,
    /// [`NetError::Internal`] if the service task itself panicked or was
    /// aborted.
    pub async fn finish(mut self) -> EpochRunResult<O> {
        // Dropping the tail first keeps the service loop from buffering
        // events nobody will read.
        self.events = None;
        match self.task.await {
            Ok(result) => result,
            Err(e) => Err(NetError::Internal(format!("epoch service task failed: {e}"))),
        }
    }
}

/// Runs an epoch stream — a long-lived [`EpochMux`] pipeline — over one
/// full TCP mesh until every epoch of the stream has resolved.
///
/// This is the deployment shape of a streaming oracle: the mux keeps
/// spawning per-asset agreement instances epoch after epoch, the service
/// routes their traffic as epoch-addressed entries in authenticated v3
/// frames, and the session layer's egress lanes
/// ([`RunOptions::send_shards`]) flush batches per [`RunOptions::flush`]
/// — per step, or adaptively on size triggers plus each lane's own
/// flush timer. With [`RunOptions::recv_shards`] > 1
/// the pipeline is split by asset across dispatch workers
/// ([`EpochMux::split_assets`]); the event stream is the merged,
/// basket-ordered view. Entries addressed to epochs the pipeline has
/// already garbage-collected are dropped and surface in
/// [`NetStats::late_entries`].
///
/// Config validation and the listener bind happen before this returns;
/// the run itself proceeds in a background task owned by the returned
/// [`EpochServiceHandle`]. Tail events live via
/// [`EpochServiceHandle::next_event`], read live counters via
/// [`EpochServiceHandle::stats`], and collect the completed stream via
/// [`EpochServiceHandle::finish`]:
///
/// ```ignore
/// let mut handle = run_epoch_service(mux, keychain, addrs, opts).await?;
/// while let Some(event) = handle.next_event().await { /* serve it */ }
/// let (events, epoch_stats, net_stats) = handle.finish().await?;
/// ```
///
/// # Errors
///
/// Returns [`NetError::Config`] on a mismatched address list or identity
/// and [`NetError::Io`] if the listener cannot be bound;
/// [`NetError::Timeout`] (the stream unresolved at the deadline) arrives
/// through [`EpochServiceHandle::finish`].
pub async fn run_epoch_service<P>(
    mux: EpochMux<P>,
    keychain: Keychain,
    addrs: Vec<SocketAddr>,
    opts: RunOptions,
) -> Result<EpochServiceHandle<P::Output>, NetError>
where
    P: Protocol + Send + 'static,
    P::Output: Clone + Send,
{
    let me = keychain.node_id();
    let n = keychain.n();
    if addrs.len() != n {
        return Err(NetError::Config(format!("{} addresses for {n} nodes", addrs.len())));
    }
    if mux.n() != n || mux.node_id() != me {
        return Err(NetError::Config("epoch mux identity mismatch".into()));
    }
    if opts.egress_capacity == 0 {
        return Err(NetError::Config("egress_capacity must be at least 1".into()));
    }
    // Clamp to the basket too: `split_assets` groups by
    // `shard(min(shards, assets))`, and ingress must route with the SAME
    // modulus the split used — otherwise entries hash to workers that do
    // not own their asset and the stream wedges.
    let shards = opts.recv_shards.clamp(1, MAX_RECV_SHARDS).min(usize::from(mux.config().assets));
    // Send lanes take no basket clamp: `class % send_shards` is a valid
    // owner for any class/lane combination (extra lanes just idle).
    let send_shards = opts.send_shards.clamp(1, MAX_RECV_SHARDS);

    // In vector-basket mode the wire config has one asset, so the shard
    // clamp above collapses to a single dispatch worker — the documented
    // trade of receive parallelism for per-message overhead.
    let vector_dims = mux.vector_dims();

    let counters = Arc::new(Counters::default());
    counters.vector_dims.store(u64::from(vector_dims), Ordering::Relaxed);
    let keychain = Arc::new(keychain);
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let (mut in_rxs, accept_task) =
        open_ingress(listener, keychain.clone(), counters.clone(), shards);
    let mut sessions = SessionSet::connect(
        keychain.clone(),
        &addrs,
        opts.reconnect_delay,
        counters.clone(),
        opts.batching,
        false,
        opts.flush,
        shards,
        send_shards,
        opts.egress_capacity,
    );

    // Split the pipeline across the dispatch workers (a 1-shard run is a
    // single worker owning the whole basket), assigning each live shard a
    // merge lane in shard order.
    let total_assets = mux.config().assets;
    let mut slots: Vec<Option<(usize, EpochShard<P>)>> = (0..shards).map(|_| None).collect();
    let mut maps: Vec<Vec<InstanceId>> = Vec::new();
    for shard in mux.split_assets(shards) {
        let index = shard.shard_index();
        maps.push(shard.assets().to_vec());
        slots[index] = Some((maps.len() - 1, shard));
    }
    let expected_done = slots.iter().filter(|s| s.is_some()).count();
    let (out_tx, mut out_rx) = mpsc::channel::<EpochShardMsg<P::Output>>(1024);
    let stats_cells: Vec<Arc<EpochStatsCell>> =
        (0..shards).map(|_| Arc::new(EpochStatsCell::new())).collect();
    let shard_tasks: Vec<tokio::task::JoinHandle<()>> = in_rxs
        .drain(..)
        .zip(slots)
        .zip(&stats_cells)
        .map(|((rx, slot), cell)| {
            tokio::spawn(epoch_shard_worker(rx, slot, out_tx.clone(), cell.clone()))
        })
        .collect();
    drop(out_tx);

    let stats = ServiceStats { cells: stats_cells.clone(), counters: counters.clone() };
    // Locally produced events, already bounded by the pipeline: at most
    // `window` epochs are in flight, each emitting one event, and no remote
    // peer can make the producer outrun that; a capacity here would only
    // back-pressure the protocol loop on a slow event reader.
    // lint: allow(bounded-channel) — producer is pipeline-bounded (see above)
    let (event_tx, event_rx) = mpsc::unbounded_channel::<EpochEvent<P::Output>>();
    let mut merger = EventMerger::new(maps, total_assets);

    let task = tokio::spawn(async move {
        let abort_all = |sessions: SessionSet, shard_tasks: &[tokio::task::JoinHandle<()>]| {
            accept_task.abort();
            for t in shard_tasks {
                t.abort();
            }
            sessions.abort();
        };

        let deadline = tokio::time::Instant::now() + opts.deadline;
        let mut events: Vec<EpochEvent<P::Output>> = Vec::new();
        let mut done_count = 0usize;
        // Start bursts must not wait for traffic (or for the adaptive
        // flush timer): the first step from every live worker flushes
        // immediately. The time trigger itself runs on the egress lanes'
        // own timers — this loop only routes bursts; it never encodes,
        // MACs, or arms a flush.
        let mut start_flushes = expected_done;
        while done_count < expected_done {
            let msg = tokio::select! {
                m = out_rx.recv() => Some(m),
                _ = tokio::time::sleep_until(deadline) => None,
            };
            match msg {
                Some(Some(EpochShardMsg::Step(bursts))) => {
                    sessions.enqueue_epoch_step(bursts).await;
                    if start_flushes > 0 {
                        start_flushes -= 1;
                        sessions.flush_epochs().await;
                    }
                }
                Some(Some(EpochShardMsg::Events { lane, events: fresh })) => {
                    let ready_from = events.len();
                    merger.push(lane, fresh, &mut events);
                    if vector_dims > 0 {
                        let agreed = events[ready_from..]
                            .iter()
                            .filter(|ev| matches!(ev.outcome, EpochOutcome::Agreed(_)))
                            .count() as u64;
                        counters.vector_instances.fetch_add(agreed, Ordering::Relaxed);
                    }
                    for ev in &events[ready_from..] {
                        // A dropped tail is fine: finish() detaches it.
                        let _ = event_tx.send(ev.clone());
                    }
                }
                Some(Some(EpochShardMsg::Done)) => {
                    done_count += 1;
                }
                Some(None) => {
                    // Every worker exited (the ingress died): no more
                    // traffic can ever arrive — fail now rather than
                    // spinning until the deadline.
                    abort_all(sessions, &shard_tasks);
                    return Err(NetError::Timeout);
                }
                None => {
                    abort_all(sessions, &shard_tasks);
                    return Err(NetError::Timeout);
                }
            }
        }
        sessions.flush_epochs().await;
        // Every worker shipped its whole stream before Done, so the
        // merged view is complete; close the live tail at that boundary.
        drop(event_tx);

        // Linger: keep serving peers still working through the stream's
        // tail.
        let linger_end = tokio::time::Instant::now() + opts.linger;
        loop {
            let msg = tokio::select! {
                m = out_rx.recv() => m,
                _ = tokio::time::sleep_until(linger_end) => None,
            };
            match msg {
                Some(EpochShardMsg::Step(bursts)) => {
                    sessions.enqueue_epoch_step(bursts).await;
                    sessions.flush_epochs().await;
                }
                Some(EpochShardMsg::Events { .. }) | Some(EpochShardMsg::Done) => {}
                None => break,
            }
        }

        for t in &shard_tasks {
            t.abort();
        }
        // Final counters come from the live cells, so late entries served
        // during the linger window (traffic for already-GC'd epochs) are
        // still counted — events were final at completion, counters were
        // not.
        let epoch_stats = merge_epoch_stats(stats_cells.iter().map(|c| c.stats_snapshot()));
        counters.late_entries.fetch_add(epoch_stats.late_entries, Ordering::Relaxed);
        sessions.flush_epochs().await;
        sessions.shutdown(opts.drain_timeout).await;
        accept_task.abort();
        Ok((events, epoch_stats, counters.snapshot()))
    });

    Ok(EpochServiceHandle { events: Some(event_rx), stats, task })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_any_frame;
    use bytes::Bytes;
    use delphi_core::BinAaNode;
    use delphi_primitives::{Dyadic, Mux, NodeId};
    use tokio::io::AsyncReadExt;

    async fn free_addrs(n: usize) -> Vec<SocketAddr> {
        // Bind ephemeral listeners to reserve distinct ports, then free
        // them; the runner re-binds moments later.
        let mut addrs = Vec::with_capacity(n);
        let mut holders = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").await.unwrap();
            addrs.push(l.local_addr().unwrap());
            holders.push(l);
        }
        drop(holders);
        addrs
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn binaa_cluster_over_loopback() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = delphi_crypto::Keychain::derive(b"net-test", id, n);
            let node = BinAaNode::new(id, n, 1, inputs[id.index()], 6);
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_node(node, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut outputs: Vec<Dyadic> = Vec::new();
        for h in handles {
            let (out, stats) = h.await.unwrap().expect("node finished");
            assert!(stats.sent_frames > 0);
            assert!(stats.recv_frames > 0);
            assert_eq!(stats.dropped_frames, 0);
            // Even a solo protocol benefits: multi-envelope steps share a
            // frame, so entries can only meet or exceed frames.
            assert!(stats.recv_entries >= stats.recv_frames);
            // Unsharded runs dispatch everything on shard 0.
            assert_eq!(stats.shard_entries[0], stats.recv_entries);
            assert!(stats.shard_entries[1..].iter().all(|&c| c == 0));
            outputs.push(out);
        }
        let tol = Dyadic::new(1, 6);
        for a in &outputs {
            for b in &outputs {
                assert!(a.abs_diff(*b) <= tol, "|{a} - {b}| over TCP");
            }
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multiplexed_binaa_instances_share_one_mesh() {
        // Two independent BinAA instances per node — one agreeing near 1,
        // one pinned at 0 — multiplexed over a single 4-node mesh.
        let n = 4;
        let addrs = free_addrs(n).await;
        let inputs = [true, false, true, true];
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = delphi_crypto::Keychain::derive(b"mux-test", id, n);
            let nodes = vec![
                BinAaNode::new(id, n, 1, inputs[id.index()], 6),
                BinAaNode::new(id, n, 1, false, 6),
            ];
            let addrs = addrs.clone();
            handles.push(tokio::spawn(async move {
                run_instances(nodes, keychain, addrs, RunOptions::default()).await
            }));
        }
        let mut per_instance: Vec<Vec<Dyadic>> = vec![Vec::new(); 2];
        for h in handles {
            let (outs, stats) = h.await.unwrap().expect("node finished");
            assert_eq!(outs.len(), 2);
            assert_eq!(stats.dropped_frames, 0);
            assert!(
                stats.sent_frames < stats.sent_entries,
                "batching must coalesce: {} frames for {} entries",
                stats.sent_frames,
                stats.sent_entries
            );
            for (i, o) in outs.into_iter().enumerate() {
                per_instance[i].push(o);
            }
        }
        let tol = Dyadic::new(1, 6);
        for outs in &per_instance {
            for a in outs {
                for b in outs {
                    assert!(a.abs_diff(*b) <= tol, "instance disagreement |{a} - {b}|");
                }
            }
        }
        // The all-zero instance must not be perturbed by instance 0's
        // traffic: correct routing keeps it exactly at 0.
        assert!(per_instance[1].iter().all(|o| *o == Dyadic::ZERO), "{:?}", per_instance[1]);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sharded_receive_matches_unsharded_outputs() {
        // The same 6-instance BinAA basket with 1 and 4 receive shards:
        // identical outputs (sharding is transport parallelism, never
        // semantics), and the sharded run spreads dispatch across shard
        // counters.
        let n = 4;
        let k = 6usize;
        let inputs = [true, false, true, true];
        let run = |seed: &'static [u8], shards: usize, addrs: Vec<SocketAddr>| async move {
            let mut handles = Vec::new();
            for id in NodeId::all(n) {
                let keychain = delphi_crypto::Keychain::derive(seed, id, n);
                let nodes: Vec<BinAaNode> = (0..k)
                    .map(|i| BinAaNode::new(id, n, 1, inputs[id.index()] ^ (i % 2 == 1), 5))
                    .collect();
                let addrs = addrs.clone();
                let opts = RunOptions { recv_shards: shards, ..RunOptions::default() };
                handles.push(tokio::spawn(async move {
                    run_instances(nodes, keychain, addrs, opts).await
                }));
            }
            let mut all = Vec::new();
            let mut stats_all = Vec::new();
            for h in handles {
                let (outs, stats) = h.await.unwrap().expect("node finished");
                all.push(outs);
                stats_all.push(stats);
            }
            (all, stats_all)
        };
        let (unsharded, _) = run(b"shard-eq", 1, free_addrs(n).await).await;
        let (sharded, stats) = run(b"shard-eq", 4, free_addrs(n).await).await;
        assert_eq!(unsharded, sharded, "sharding must not change any output");
        for s in &stats {
            assert_eq!(s.dropped_frames, 0);
            let spread = s.shard_entries.iter().filter(|&&c| c > 0).count();
            assert!(spread > 1, "entries must spread across shards: {:?}", s.shard_entries);
            assert_eq!(s.shard_entries.iter().sum::<u64>(), s.recv_entries);
        }
    }

    /// Broadcasts `rounds` waves, advancing after each full wave of peer
    /// messages; its envelope count is schedule-independent, which makes
    /// frame counts comparable across runs — and equal to the simulated
    /// Mux run's message count, the sim/TCP parity check below.
    struct Wave {
        id: NodeId,
        n: usize,
        rounds: u8,
        seen: usize,
        sent: u8,
    }

    impl Wave {
        fn new(id: NodeId, n: usize, rounds: u8) -> Wave {
            Wave { id, n, rounds, seen: 0, sent: 0 }
        }
    }

    impl Protocol for Wave {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            self.sent = 1;
            vec![Envelope::to_all(Bytes::from_static(b"wave"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.seen += 1;
            if self.seen % (self.n - 1) == 0 && self.sent < self.rounds {
                self.sent += 1;
                vec![Envelope::to_all(Bytes::from_static(b"wave"))]
            } else {
                Vec::new()
            }
        }
        fn output(&self) -> Option<usize> {
            (self.seen >= usize::from(self.rounds) * (self.n - 1)).then_some(self.seen)
        }
    }

    const WAVE_N: usize = 3;
    const WAVE_INSTANCES: usize = 4;
    const WAVE_ROUNDS: u8 = 3;

    async fn run_wave_cluster(
        seed: &'static [u8],
        batching: bool,
        flush: FlushPolicy,
        send_shards: usize,
    ) -> NetStats {
        let addrs = free_addrs(WAVE_N).await;
        let mut handles = Vec::new();
        for id in NodeId::all(WAVE_N) {
            let keychain = delphi_crypto::Keychain::derive(seed, id, WAVE_N);
            let nodes: Vec<Wave> =
                (0..WAVE_INSTANCES).map(|_| Wave::new(id, WAVE_N, WAVE_ROUNDS)).collect();
            let addrs = addrs.clone();
            let opts = RunOptions { batching, flush, send_shards, ..RunOptions::default() };
            handles.push(tokio::spawn(
                async move { run_instances(nodes, keychain, addrs, opts).await },
            ));
        }
        let mut total = NetStats::default();
        for h in handles {
            let (outs, stats) = h.await.unwrap().expect("node finished");
            assert_eq!(outs.len(), WAVE_INSTANCES);
            assert_eq!(stats.dropped_frames, 0);
            assert_eq!(stats.dropped_egress, 0);
            // Per-lane egress accounting is complete: every routed entry
            // was flushed by exactly one lane, and every frame paid
            // exactly one encode-side tag.
            assert_eq!(stats.egress_shard_entries.iter().sum::<u64>(), stats.sent_entries);
            assert_eq!(stats.egress_shard_macs.iter().sum::<u64>(), stats.sent_frames);
            total.sent_frames += stats.sent_frames;
            total.sent_bytes += stats.sent_bytes;
            total.sent_entries += stats.sent_entries;
            total.mac_ops += stats.mac_ops;
            total.buffer_reuses += stats.buffer_reuses;
        }
        total
    }

    /// The same Wave workload under the simulator, multiplexed per node —
    /// the reference the TCP runner's frame accounting must match.
    fn run_wave_simulation() -> (u64, u64) {
        use delphi_sim::{Simulation, Topology};
        let nodes: Vec<Box<dyn Protocol<Output = Vec<usize>>>> = NodeId::all(WAVE_N)
            .map(|id| {
                let instances: Vec<Wave> =
                    (0..WAVE_INSTANCES).map(|_| Wave::new(id, WAVE_N, WAVE_ROUNDS)).collect();
                Box::new(Mux::new(instances)) as Box<dyn Protocol<Output = Vec<usize>>>
            })
            .collect();
        let report = Simulation::new(Topology::lan(WAVE_N)).seed(7).run(nodes);
        assert!(report.all_honest_finished(), "sim wave run stalled");
        // Entries: every wave is a broadcast from every instance.
        let entries = (WAVE_N * WAVE_INSTANCES * usize::from(WAVE_ROUNDS) * (WAVE_N - 1)) as u64;
        (report.metrics.total_msgs(), entries)
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn batching_reduces_frames_and_macs_at_equal_envelope_count() {
        let batched = run_wave_cluster(b"wave-batched", true, FlushPolicy::PerStep, 1).await;
        let unbatched = run_wave_cluster(b"wave-unbatched", false, FlushPolicy::PerStep, 1).await;
        // Same protocols, schedule-independent envelope counts: the
        // workloads are identical.
        assert_eq!(batched.sent_entries, unbatched.sent_entries);
        assert!(
            batched.sent_frames < unbatched.sent_frames,
            "batched {} vs unbatched {} frames",
            batched.sent_frames,
            unbatched.sent_frames
        );
        assert!(
            batched.mac_ops < unbatched.mac_ops,
            "batched {} vs unbatched {} HMAC invocations",
            batched.mac_ops,
            unbatched.mac_ops
        );
        assert!(
            batched.sent_bytes < unbatched.sent_bytes,
            "batched {} vs unbatched {} bytes",
            batched.sent_bytes,
            unbatched.sent_bytes
        );
        // Unbatched, every envelope is its own frame.
        assert_eq!(unbatched.sent_frames, unbatched.sent_entries);

        // Parity with the simulator: the batched per-step TCP run puts
        // exactly as many frames (and entries) on the wire as the
        // multiplexed simulation sends messages — simulated cost IS real
        // cost, which is what makes the sim sweeps trustworthy.
        let (sim_msgs, sim_entries) = run_wave_simulation();
        assert_eq!(batched.sent_frames, sim_msgs, "TCP frames == simulated messages");
        assert_eq!(batched.sent_entries, sim_entries, "TCP entries == simulated envelopes");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sharded_egress_matches_simulated_accounting_exactly() {
        // The PR 5 parity test extended to the send side: egress lanes
        // never split a (destination, shard) batch, so the frames,
        // entries, and encode-side MACs the sharded TCP sender puts on
        // the wire stay EXACTLY equal to the simulated Mux accounting at
        // every send-shard count — send sharding is pure CPU
        // parallelism, invisible on the wire.
        let (sim_msgs, sim_entries) = run_wave_simulation();
        for (seed, send_shards) in
            [(b"wave-ss1" as &'static [u8], 1usize), (b"wave-ss2", 2), (b"wave-ss4", 4)]
        {
            let total = run_wave_cluster(seed, true, FlushPolicy::PerStep, send_shards).await;
            assert_eq!(
                total.sent_frames, sim_msgs,
                "TCP frames == simulated messages at {send_shards} send shards"
            );
            assert_eq!(
                total.sent_entries, sim_entries,
                "TCP entries == simulated envelopes at {send_shards} send shards"
            );
        }
    }

    /// Responds to *every* inbound message with a broadcast until its
    /// send budget is spent — unlike the lock-step `Wave`, consecutive
    /// responses carry no data dependency, which is exactly the traffic
    /// shape adaptive flushing coalesces. The envelope count is fixed
    /// (`budget` broadcasts per instance) regardless of schedule.
    struct Chatty {
        id: NodeId,
        n: usize,
        budget: u8,
        sent: u8,
        seen: usize,
    }

    impl Protocol for Chatty {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            self.sent = 1;
            vec![Envelope::to_all(Bytes::from_static(b"chat"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.seen += 1;
            if self.sent < self.budget {
                self.sent += 1;
                vec![Envelope::to_all(Bytes::from_static(b"chat"))]
            } else {
                Vec::new()
            }
        }
        fn output(&self) -> Option<usize> {
            (self.seen >= usize::from(self.budget) * (self.n - 1)).then_some(self.seen)
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn adaptive_flush_cuts_one_shot_frames_at_equal_envelope_count() {
        // The open ROADMAP item: adaptive flushing on the *one-shot* path.
        // Entries are schedule-independent, so the per-entry frame cost
        // comparison is exact.
        let n = 3;
        let instances = 4usize;
        let budget = 6u8;
        let run = |seed: &'static [u8], flush: FlushPolicy| async move {
            let addrs = free_addrs(n).await;
            let mut handles = Vec::new();
            for id in NodeId::all(n) {
                let keychain = delphi_crypto::Keychain::derive(seed, id, n);
                let nodes: Vec<Chatty> =
                    (0..instances).map(|_| Chatty { id, n, budget, sent: 0, seen: 0 }).collect();
                let addrs = addrs.clone();
                let opts = RunOptions { flush, ..RunOptions::default() };
                handles.push(tokio::spawn(async move {
                    run_instances(nodes, keychain, addrs, opts).await
                }));
            }
            let mut total = NetStats::default();
            for h in handles {
                let (outs, stats) = h.await.unwrap().expect("node finished");
                assert_eq!(outs.len(), instances);
                assert_eq!(stats.dropped_frames, 0);
                total.sent_frames += stats.sent_frames;
                total.sent_entries += stats.sent_entries;
                total.mac_ops += stats.mac_ops;
                total.buffer_reuses += stats.buffer_reuses;
            }
            total
        };
        let per_step = run(b"chat-perstep", FlushPolicy::PerStep).await;
        let adaptive = run(
            b"chat-adaptive",
            FlushPolicy::Adaptive {
                max_entries: 16,
                max_bytes: 4096,
                max_delay: Duration::from_millis(5),
            },
        )
        .await;
        assert_eq!(per_step.sent_entries, adaptive.sent_entries, "same protocol work");
        assert!(
            adaptive.sent_frames < per_step.sent_frames,
            "adaptive {} vs per-step {} frames for {} entries",
            adaptive.sent_frames,
            per_step.sent_frames,
            per_step.sent_entries
        );
        assert!(
            adaptive.mac_ops < per_step.mac_ops,
            "fewer frames must mean fewer tags: {} vs {}",
            adaptive.mac_ops,
            per_step.mac_ops
        );
        // The flush path recycles its buffers: steady-state flushing hits
        // the free-list instead of the allocator.
        assert!(per_step.buffer_reuses > 0, "per-step flushing reuses buffers");
        assert!(adaptive.buffer_reuses > 0, "adaptive flushing reuses buffers");
    }

    /// Bursts `k` point-to-point frames at start and outputs immediately.
    struct Burst {
        id: NodeId,
        k: usize,
    }

    impl Protocol for Burst {
        type Output = ();
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            2
        }
        fn start(&mut self) -> Vec<Envelope> {
            (0..self.k)
                .map(|i| Envelope::to_one(NodeId(1), Bytes::from(vec![i as u8; 32])))
                .collect()
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shutdown_drains_queued_frames_to_slow_peer() {
        // Node 0 bursts 50 frames at a peer that is slow to come up: the
        // runner's writer is still in its dial-retry loop when the
        // protocol output arrives. Shutdown must wait for the queue to
        // flush (bounded by drain_timeout) — the old fixed 50 ms sleep +
        // abort dropped every one of these frames.
        let k = 50usize;
        let addrs = free_addrs(2).await;
        let peer_addr = addrs[1];
        let keychain = delphi_crypto::Keychain::derive(b"drain-test", NodeId(0), 2);
        let opts = RunOptions {
            linger: Duration::ZERO,
            batching: false, // one frame per envelope: all 50 must arrive
            ..RunOptions::default()
        };
        let runner = tokio::spawn(async move {
            run_node(Burst { id: NodeId(0), k }, keychain, addrs, opts).await
        });

        // The peer appears only after the old grace period has long passed.
        tokio::time::sleep(Duration::from_millis(250)).await;
        let listener = TcpListener::bind(peer_addr).await.unwrap();
        let reader = tokio::spawn(async move {
            let kc = delphi_crypto::Keychain::derive(b"drain-test", NodeId(1), 2);
            let (mut stream, _) = listener.accept().await.unwrap();
            let mut got = 0usize;
            while got < k {
                let mut len_buf = [0u8; 4];
                stream.read_exact(&mut len_buf).await.unwrap();
                let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
                stream.read_exact(&mut body).await.unwrap();
                let (from, entries) = decode_any_frame(&kc, &body).expect("authentic frame");
                assert_eq!(from, NodeId(0));
                got += entries.len();
            }
            got
        });

        let (_, stats) = runner.await.unwrap().expect("run ok");
        assert_eq!(stats.sent_frames, k as u64, "every queued frame flushed before return");
        assert_eq!(stats.sent_entries, k as u64);
        assert_eq!(reader.await.unwrap(), k, "slow peer received every frame");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shutdown_drains_every_egress_lane_before_writer_close() {
        // Four Burst instances across 4 receive shards × 4 egress lanes,
        // all firing at a peer that comes up late: shutdown must close
        // the LANES first — each flushing what it still buffers into the
        // writer queue — and only then close the writer, or whole lanes'
        // worth of frames would vanish. Every one of the 4 × k frames
        // must reach the slow peer.
        let k = 50usize;
        let instances = 4usize;
        let total = k * instances;
        let addrs = free_addrs(2).await;
        let peer_addr = addrs[1];
        let keychain = delphi_crypto::Keychain::derive(b"lane-drain", NodeId(0), 2);
        let opts = RunOptions {
            linger: Duration::ZERO,
            batching: false, // one frame per envelope: all of them must arrive
            recv_shards: 4,
            send_shards: 4,
            ..RunOptions::default()
        };
        let runner = tokio::spawn(async move {
            let nodes: Vec<Burst> = (0..instances).map(|_| Burst { id: NodeId(0), k }).collect();
            run_instances(nodes, keychain, addrs, opts).await
        });

        tokio::time::sleep(Duration::from_millis(250)).await;
        let listener = TcpListener::bind(peer_addr).await.unwrap();
        let reader = tokio::spawn(async move {
            let kc = delphi_crypto::Keychain::derive(b"lane-drain", NodeId(1), 2);
            let (mut stream, _) = listener.accept().await.unwrap();
            let mut got = 0usize;
            while got < total {
                let mut len_buf = [0u8; 4];
                stream.read_exact(&mut len_buf).await.unwrap();
                let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
                stream.read_exact(&mut body).await.unwrap();
                let (from, entries) = decode_any_frame(&kc, &body).expect("authentic frame");
                assert_eq!(from, NodeId(0));
                got += entries.len();
            }
            got
        });

        let (_, stats) = runner.await.unwrap().expect("run ok");
        assert_eq!(stats.sent_frames, total as u64, "every lane drained before writer close");
        assert_eq!(stats.sent_entries, total as u64);
        assert_eq!(stats.egress_shard_entries.iter().sum::<u64>(), total as u64);
        assert!(
            stats.egress_shard_entries.iter().filter(|&&c| c > 0).count() > 1,
            "the burst must have exercised more than one lane: {:?}",
            stats.egress_shard_entries
        );
        assert_eq!(reader.await.unwrap(), total, "slow peer received every frame");
    }

    /// One-round epoch gossip: each `(epoch, asset)` instance broadcasts
    /// once and outputs after `n - 1` greetings — completion needs every
    /// peer, so the stream exercises real multi-epoch coordination.
    struct EpochGossip {
        id: NodeId,
        n: usize,
        tag: f64,
        heard: usize,
    }

    impl Protocol for EpochGossip {
        type Output = f64;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::from_static(b"g"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.heard += 1;
            Vec::new()
        }
        fn output(&self) -> Option<f64> {
            (self.heard >= self.n - 1).then_some(self.tag)
        }
    }

    fn epoch_mux(
        me: NodeId,
        n: usize,
        cfg: delphi_primitives::EpochConfig,
    ) -> EpochMux<EpochGossip> {
        EpochMux::new(
            cfg,
            me,
            n,
            Box::new(move |e, a| EpochGossip {
                id: me,
                n,
                tag: f64::from(e.0) * 10.0 + f64::from(a.0),
                heard: 0,
            }),
        )
    }

    async fn run_epoch_cluster(
        seed: &'static [u8],
        flush: FlushPolicy,
        recv_shards: usize,
        send_shards: usize,
    ) -> Vec<NetStats> {
        use delphi_primitives::{EpochConfig, EpochOutcome};
        let n = 3;
        let epochs = 8u32;
        let assets = 2u16;
        let addrs = free_addrs(n).await;
        let mut handles = Vec::new();
        for id in NodeId::all(n) {
            let keychain = delphi_crypto::Keychain::derive(seed, id, n);
            let mux = epoch_mux(id, n, EpochConfig::new(epochs, assets, 2, 4, 1));
            let addrs = addrs.clone();
            let opts = RunOptions { flush, recv_shards, send_shards, ..RunOptions::default() };
            handles.push(tokio::spawn(async move {
                run_epoch_service(mux, keychain, addrs, opts).await?.finish().await
            }));
        }
        let mut all_stats = Vec::new();
        for h in handles {
            let (events, epoch_stats, stats) = h.await.unwrap().expect("stream finished");
            assert_eq!(events.len(), epochs as usize);
            for (e, event) in events.iter().enumerate() {
                assert_eq!(event.epoch.index(), e, "ordered stream");
                let EpochOutcome::Agreed(values) = &event.outcome else {
                    panic!("honest stream skipped epoch {e}");
                };
                let expect: Vec<f64> =
                    (0..assets).map(|a| e as f64 * 10.0 + f64::from(a)).collect();
                assert_eq!(values, &expect);
            }
            assert_eq!(epoch_stats.stale_epochs, 0);
            assert!(epoch_stats.peak_resident <= 4, "live window bound over TCP");
            assert_eq!(stats.dropped_frames, 0);
            all_stats.push(stats);
        }
        all_stats
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn epoch_service_streams_over_loopback() {
        let stats = run_epoch_cluster(b"epoch-stream", FlushPolicy::PerStep, 1, 1).await;
        for s in &stats {
            assert!(s.sent_frames > 0 && s.recv_frames > 0);
            assert!(s.recv_entries >= s.recv_frames);
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sharded_epoch_service_streams_over_loopback() {
        // The same stream with a 2-way sharded receive path: identical
        // (merged, basket-ordered) events — run_epoch_cluster asserts the
        // values — with dispatch spread over both shard counters.
        let stats = run_epoch_cluster(b"epoch-sharded", FlushPolicy::PerStep, 2, 1).await;
        for s in &stats {
            assert_eq!(s.dropped_frames, 0);
            let spread = s.shard_entries.iter().filter(|&&c| c > 0).count();
            assert!(spread > 1, "entries must spread across shards: {:?}", s.shard_entries);
            assert_eq!(s.shard_entries.iter().sum::<u64>(), s.recv_entries);
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sharded_send_lanes_preserve_epoch_stream() {
        // Receive shards 2 × send shards 2: with two shard classes, lane
        // assignment is `class % 2 == class`, so each egress lane's entry
        // count must equal the count the RECEIVERS dispatch on that shard
        // — the per-shard egress load the simulator models is the real
        // per-lane load, by construction. run_epoch_cluster already
        // asserts the merged events are identical to every other
        // configuration's.
        let stats = run_epoch_cluster(b"epoch-send-sharded", FlushPolicy::PerStep, 2, 2).await;
        let mut egress_lane_totals = [0u64; MAX_RECV_SHARDS];
        let mut recv_shard_totals = [0u64; MAX_RECV_SHARDS];
        for s in &stats {
            assert_eq!(s.dropped_egress, 0);
            assert_eq!(s.egress_shard_entries.iter().sum::<u64>(), s.sent_entries);
            assert_eq!(s.egress_shard_macs.iter().sum::<u64>(), s.sent_frames);
            let spread = s.egress_shard_entries.iter().filter(|&&c| c > 0).count();
            assert!(spread > 1, "egress must spread across lanes: {:?}", s.egress_shard_entries);
            for lane in 0..MAX_RECV_SHARDS {
                egress_lane_totals[lane] += s.egress_shard_entries[lane];
                recv_shard_totals[lane] += s.shard_entries[lane];
            }
        }
        assert_eq!(
            egress_lane_totals, recv_shard_totals,
            "per-lane egress load == per-shard dispatch load across the cluster"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn more_shards_than_assets_clamps_instead_of_wedging() {
        // recv_shards = 4 with a 2-asset basket: the service must clamp
        // the shard count to the basket so ingress routing and the
        // pipeline split agree — a mismatched modulus would strand
        // entries on workers that own nothing and time the stream out.
        let stats = run_epoch_cluster(b"epoch-overshard", FlushPolicy::PerStep, 4, 1).await;
        for s in &stats {
            assert_eq!(s.dropped_frames, 0);
            assert_eq!(s.shard_entries.iter().sum::<u64>(), s.recv_entries);
            assert!(
                s.shard_entries[2..].iter().all(|&c| c == 0),
                "entries past the clamped shard count: {:?}",
                s.shard_entries
            );
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn adaptive_flush_cuts_frames_per_entry_over_tcp() {
        let per_step = run_epoch_cluster(b"epoch-perstep", FlushPolicy::PerStep, 1, 1).await;
        let adaptive = run_epoch_cluster(
            b"epoch-adaptive",
            FlushPolicy::Adaptive {
                max_entries: 8,
                max_bytes: 4096,
                max_delay: Duration::from_millis(5),
            },
            1,
            1,
        )
        .await;
        let total = |v: &[NetStats]| {
            v.iter().fold((0u64, 0u64), |(f, e), s| (f + s.sent_frames, e + s.sent_entries))
        };
        let (ps_frames, ps_entries) = total(&per_step);
        let (ad_frames, ad_entries) = total(&adaptive);
        // Independent asynchronous executions: compare the
        // schedule-independent per-entry frame cost.
        assert!(
            ad_frames * ps_entries < ps_frames * ad_entries,
            "adaptive {ad_frames}/{ad_entries} vs per-step {ps_frames}/{ps_entries} \
             frames per entry"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn live_tail_matches_the_finished_stream() {
        use delphi_primitives::EpochConfig;
        // One node tails its own stream while it runs; the tail must be
        // the finished stream, event for event, and must end (None) as
        // soon as the stream completes — not when the linger ends.
        let n = 3;
        let epochs = 6u32;
        let addrs = free_addrs(n).await;
        let mut peers = Vec::new();
        for id in NodeId::all(n).skip(1) {
            let keychain = delphi_crypto::Keychain::derive(b"live-tail", id, n);
            let mux = epoch_mux(id, n, EpochConfig::new(epochs, 2, 2, 4, 1));
            let addrs = addrs.clone();
            peers.push(tokio::spawn(async move {
                run_epoch_service(mux, keychain, addrs, RunOptions::default()).await?.finish().await
            }));
        }
        let keychain = delphi_crypto::Keychain::derive(b"live-tail", NodeId(0), n);
        let mux = epoch_mux(NodeId(0), n, EpochConfig::new(epochs, 2, 2, 4, 1));
        let mut handle = run_epoch_service(mux, keychain, addrs, RunOptions::default())
            .await
            .expect("service starts");
        // A detached stats probe stays readable while the stream runs and
        // after it finishes.
        let probe = handle.stats();
        let mut tail = Vec::new();
        while let Some(event) = handle.next_event().await {
            // Mid-stream snapshots are coherent: sharded 2-asset basket
            // under a window of 4 — never more resident, never stale.
            let mid = probe.epoch_snapshot();
            assert!(mid.peak_resident <= 4, "torn or wild snapshot: {mid:?}");
            assert_eq!(mid.stale_epochs, 0);
            tail.push(event);
        }
        let (events, epoch_stats, _) = handle.finish().await.expect("stream finished");
        assert_eq!(tail, events, "the live tail is the finished stream");
        assert_eq!(tail.len(), epochs as usize);
        assert_eq!(probe.epoch_snapshot(), epoch_stats, "probe converges to the final stats");
        assert!(probe.net_snapshot().recv_frames > 0);
        for p in peers {
            p.await.unwrap().expect("peer stream finished");
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn late_frames_to_evicted_epochs_counted_in_net_stats() {
        use crate::frame::encode_epoch_frame;
        use delphi_primitives::EpochConfig;
        // Node 0 runs a 2-epoch stream with a 1-epoch window; a raw-socket
        // peer replays an epoch-0 entry after epoch 0 was completed and
        // evicted. The late entry must be dropped, counted, and harmless.
        let addrs = free_addrs(2).await;
        let kc0 = delphi_crypto::Keychain::derive(b"late-test", NodeId(0), 2);
        let kc1 = delphi_crypto::Keychain::derive(b"late-test", NodeId(1), 2);
        let service_addrs = addrs.clone();
        let service = tokio::spawn(async move {
            let mux = epoch_mux(NodeId(0), 2, EpochConfig::new(2, 1, 1, 1, 1));
            let opts = RunOptions {
                linger: Duration::from_millis(200),
                drain_timeout: Duration::from_millis(500),
                ..RunOptions::default()
            };
            run_epoch_service(mux, kc0, service_addrs, opts).await?.finish().await
        });

        // The peer accepts node 0's outbound connection and discards its
        // frames, so shutdown drains cleanly.
        let sink = TcpListener::bind(addrs[1]).await.unwrap();
        tokio::spawn(async move {
            loop {
                let Ok((mut s, _)) = sink.accept().await else { break };
                tokio::spawn(async move {
                    let mut buf = [0u8; 64];
                    while s.read_exact(&mut buf).await.is_ok() {}
                });
            }
        });

        let mut stream = loop {
            match tokio::net::TcpStream::connect(addrs[0]).await {
                Ok(s) => break s,
                Err(_) => tokio::time::sleep(Duration::from_millis(10)).await,
            }
        };
        use tokio::io::AsyncWriteExt;
        let entry = |epoch: u32| {
            vec![(
                delphi_primitives::AgreementId::new(
                    delphi_primitives::EpochId(epoch),
                    InstanceId(0),
                ),
                Bytes::from_static(b"g"),
            )]
        };
        // Epoch 0 completes and is evicted when epoch 1 spawns.
        stream.write_all(&encode_epoch_frame(&kc1, NodeId(0), &entry(0))).await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        // Replay epoch 0: late. Then finish the stream with epoch 1.
        stream.write_all(&encode_epoch_frame(&kc1, NodeId(0), &entry(0))).await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        stream.write_all(&encode_epoch_frame(&kc1, NodeId(0), &entry(1))).await.unwrap();

        let (events, epoch_stats, stats) = service.await.unwrap().expect("stream finished");
        assert_eq!(events.len(), 2);
        assert_eq!(epoch_stats.late_entries, 1, "the replayed entry is late");
        assert_eq!(stats.late_entries, 1, "late entries surface in NetStats");
        assert_eq!(stats.dropped_frames, 0, "late != dropped: the frame authenticated");
    }

    #[tokio::test]
    async fn epoch_identity_mismatch_rejected() {
        use delphi_primitives::EpochConfig;
        let keychain = delphi_crypto::Keychain::derive(b"x", NodeId(0), 4);
        let mux = epoch_mux(NodeId(0), 2, EpochConfig::new(1, 1, 1, 1, 0));
        let Err(err) = run_epoch_service(
            mux,
            keychain,
            vec!["127.0.0.1:1".parse().unwrap(); 4],
            RunOptions::default(),
        )
        .await
        else {
            panic!("identity mismatch must be rejected before the stream starts");
        };
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test]
    async fn config_mismatch_rejected() {
        let keychain = delphi_crypto::Keychain::derive(b"x", NodeId(0), 4);
        let node = BinAaNode::new(NodeId(0), 4, 1, true, 4);
        let err =
            run_node(node, keychain, vec!["127.0.0.1:1".parse().unwrap()], RunOptions::default())
                .await
                .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test]
    async fn empty_instance_list_rejected() {
        let keychain = delphi_crypto::Keychain::derive(b"x", NodeId(0), 1);
        let err = run_instances(
            Vec::<BinAaNode>::new(),
            keychain,
            vec!["127.0.0.1:1".parse().unwrap()],
            RunOptions::default(),
        )
        .await
        .unwrap_err();
        assert!(matches!(err, NetError::Config(_)), "{err}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn timeout_when_peers_missing() {
        let n = 4;
        let addrs = free_addrs(n).await;
        let keychain = delphi_crypto::Keychain::derive(b"x", NodeId(0), n);
        let node = BinAaNode::new(NodeId(0), n, 1, true, 4);
        let opts = RunOptions { deadline: Duration::from_millis(300), ..RunOptions::default() };
        let err = run_node(node, keychain, addrs, opts).await.unwrap_err();
        assert!(matches!(err, NetError::Timeout), "{err}");
    }

    #[test]
    fn error_display() {
        assert!(NetError::Timeout.to_string().contains("deadline"));
        assert!(NetError::Config("x".into()).to_string().contains("x"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
