//! Exact binary rationals `num / 2^log_den`.
//!
//! Every state value manipulated by the BinAA sub-protocol of Delphi is of
//! this form: inputs are 0 or 1, and each round replaces a value by the
//! midpoint of at most two values from the previous round (Algorithm 1,
//! line 20). Representing them exactly lets the test-suite check agreement
//! and validity *exactly*, and makes wire encodings canonical.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;

use crate::wire::{Decode, Encode, Reader, WireError, Writer};

/// Largest supported exponent (`log2` of the denominator).
///
/// 62 keeps all internal comparisons within `u128` arithmetic. Protocols
/// impose much tighter caps (Delphi's parameter engine caps the BinAA round
/// count, and thereby the exponent, at 32) and must validate attacker-
/// supplied values against their own cap; this constant is the structural
/// limit below which [`Dyadic`] arithmetic itself is exact and panic-free.
pub const MAX_LOG_DEN: u8 = 62;

/// An exact non-negative binary rational `num / 2^log_den`.
///
/// Values are kept normalized (the numerator is odd, or the exponent is 0),
/// so equality is structural and encodings are canonical.
///
/// # Example
///
/// ```
/// use delphi_primitives::Dyadic;
///
/// let a = Dyadic::ZERO;
/// let b = Dyadic::ONE;
/// let mid = a.midpoint(b);
/// assert_eq!(mid, Dyadic::new(1, 1));        // 1/2
/// assert_eq!(mid.midpoint(b), Dyadic::new(3, 2)); // 3/4
/// assert_eq!(mid.to_f64(), 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dyadic {
    num: u64,
    log_den: u8,
}

/// Error returned by [`Dyadic::try_new`] when the exponent exceeds
/// [`MAX_LOG_DEN`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DyadicRangeError {
    log_den: u8,
}

impl fmt::Display for DyadicRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dyadic exponent {} exceeds maximum {}", self.log_den, MAX_LOG_DEN)
    }
}

impl Error for DyadicRangeError {}

impl Dyadic {
    /// The value 0.
    pub const ZERO: Dyadic = Dyadic { num: 0, log_den: 0 };
    /// The value 1.
    pub const ONE: Dyadic = Dyadic { num: 1, log_den: 0 };

    /// Creates `num / 2^log_den`, normalizing the representation.
    ///
    /// # Panics
    ///
    /// Panics if `log_den > MAX_LOG_DEN`. Use [`Dyadic::try_new`] for
    /// untrusted exponents.
    ///
    /// ```
    /// use delphi_primitives::Dyadic;
    /// assert_eq!(Dyadic::new(2, 2), Dyadic::new(1, 1)); // 2/4 == 1/2
    /// ```
    pub fn new(num: u64, log_den: u8) -> Dyadic {
        Dyadic::try_new(num, log_den).expect("dyadic exponent out of range")
    }

    /// Creates `num / 2^log_den`, normalizing the representation.
    ///
    /// # Errors
    ///
    /// Returns [`DyadicRangeError`] if `log_den > MAX_LOG_DEN`.
    pub fn try_new(num: u64, log_den: u8) -> Result<Dyadic, DyadicRangeError> {
        if log_den > MAX_LOG_DEN {
            return Err(DyadicRangeError { log_den });
        }
        Ok(Dyadic::normalized(num, log_den))
    }

    fn normalized(mut num: u64, mut log_den: u8) -> Dyadic {
        if num == 0 {
            return Dyadic::ZERO;
        }
        let reducible = num.trailing_zeros().min(u32::from(log_den)) as u8;
        num >>= reducible;
        log_den -= reducible;
        Dyadic { num, log_den }
    }

    /// Creates 0 or 1 from a binary input, as fed into BinAA.
    ///
    /// ```
    /// use delphi_primitives::Dyadic;
    /// assert_eq!(Dyadic::from_bit(true), Dyadic::ONE);
    /// assert_eq!(Dyadic::from_bit(false), Dyadic::ZERO);
    /// ```
    pub fn from_bit(bit: bool) -> Dyadic {
        if bit {
            Dyadic::ONE
        } else {
            Dyadic::ZERO
        }
    }

    /// The normalized numerator.
    pub fn num(self) -> u64 {
        self.num
    }

    /// The normalized exponent (`log2` of the denominator).
    pub fn log_den(self) -> u8 {
        self.log_den
    }

    /// Whether this is exactly 0.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this is exactly 1.
    pub fn is_one(self) -> bool {
        self == Dyadic::ONE
    }

    /// Converts to `f64`. Exact whenever `log_den ≤ 52` and the numerator
    /// fits in 53 bits, which holds for all values BinAA produces under the
    /// parameter engine's `r_M ≤ 32` cap.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / 2f64.powi(i32::from(self.log_den))
    }

    /// Exact midpoint `(self + other) / 2`.
    ///
    /// This is the BinAA state-update operation (Algorithm 1, line 20).
    ///
    /// # Panics
    ///
    /// Panics if the result's exponent would exceed [`MAX_LOG_DEN`] or its
    /// numerator would overflow. Use [`Dyadic::checked_midpoint`] when the
    /// operands may come from an untrusted source.
    pub fn midpoint(self, other: Dyadic) -> Dyadic {
        self.checked_midpoint(other).expect("dyadic midpoint out of range")
    }

    /// Exact midpoint `(self + other) / 2`, or `None` if the result cannot
    /// be represented (exponent above [`MAX_LOG_DEN`] or numerator overflow).
    pub fn checked_midpoint(self, other: Dyadic) -> Option<Dyadic> {
        let den = self.log_den.max(other.log_den);
        let a = u128::from(self.num) << (den - self.log_den);
        let b = u128::from(other.num) << (den - other.log_den);
        let sum = a + b; // ≤ 2^65: cannot overflow u128.
        let mut num = sum;
        let mut log_den = u32::from(den) + 1;
        let reducible = (num.trailing_zeros()).min(log_den);
        num >>= reducible;
        log_den -= reducible;
        if log_den > u32::from(MAX_LOG_DEN) {
            return None;
        }
        let num = u64::try_from(num).ok()?;
        Some(Dyadic { num, log_den: log_den as u8 })
    }

    /// Exact absolute difference `|self − other|`, or `None` on overflow.
    pub fn checked_abs_diff(self, other: Dyadic) -> Option<Dyadic> {
        let den = self.log_den.max(other.log_den);
        let a = u128::from(self.num) << (den - self.log_den);
        let b = u128::from(other.num) << (den - other.log_den);
        let diff = a.abs_diff(b);
        let mut num = diff;
        let mut log_den = u32::from(den);
        if num > 0 {
            let reducible = num.trailing_zeros().min(log_den);
            num >>= reducible;
            log_den -= reducible;
        } else {
            log_den = 0;
        }
        let num = u64::try_from(num).ok()?;
        Some(Dyadic { num, log_den: log_den as u8 })
    }

    /// Exact absolute difference `|self − other|`.
    ///
    /// # Panics
    ///
    /// Panics on numerator overflow; impossible for values in `[0, 1]`.
    pub fn abs_diff(self, other: Dyadic) -> Dyadic {
        self.checked_abs_diff(other).expect("dyadic abs_diff overflow")
    }

    /// Whether the value lies in the closed unit interval `[0, 1]`.
    ///
    /// All BinAA weights satisfy this; decoders use it to reject Byzantine
    /// values early.
    pub fn in_unit_interval(self) -> bool {
        self <= Dyadic::ONE
    }
}

impl Default for Dyadic {
    fn default() -> Self {
        Dyadic::ZERO
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let den = self.log_den.max(other.log_den);
        let a = u128::from(self.num) << (den - self.log_den);
        let b = u128::from(other.num) << (den - other.log_den);
        a.cmp(&b)
    }
}

impl fmt::Debug for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dyadic({}/2^{})", self.num, self.log_den)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.log_den == 0 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/2^{}", self.num, self.log_den)
        }
    }
}

impl From<Dyadic> for f64 {
    fn from(d: Dyadic) -> f64 {
        d.to_f64()
    }
}

impl Encode for Dyadic {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.num);
        w.put_raw_u8(self.log_den);
    }
}

impl Decode for Dyadic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num = r.get_u64()?;
        let log_den = r.get_raw_u8()?;
        Dyadic::try_new(num, log_den).map_err(|_| WireError::InvalidValue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;
    use proptest::prelude::*;

    #[test]
    fn constants_and_predicates() {
        assert!(Dyadic::ZERO.is_zero());
        assert!(!Dyadic::ZERO.is_one());
        assert!(Dyadic::ONE.is_one());
        assert_eq!(Dyadic::ZERO.to_f64(), 0.0);
        assert_eq!(Dyadic::ONE.to_f64(), 1.0);
        assert_eq!(Dyadic::default(), Dyadic::ZERO);
        assert!(Dyadic::new(1, 1).in_unit_interval());
        assert!(!Dyadic::new(3, 1).in_unit_interval());
    }

    #[test]
    fn normalization_canonicalizes() {
        assert_eq!(Dyadic::new(4, 3), Dyadic::new(1, 1));
        assert_eq!(Dyadic::new(0, 17), Dyadic::ZERO);
        assert_eq!(Dyadic::new(6, 1), Dyadic::new(3, 0));
        let d = Dyadic::new(12, 2);
        assert_eq!((d.num(), d.log_den()), (3, 0));
    }

    #[test]
    fn try_new_rejects_large_exponent() {
        assert!(Dyadic::try_new(1, MAX_LOG_DEN).is_ok());
        let err = Dyadic::try_new(1, MAX_LOG_DEN + 1).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn midpoint_matches_paper_iteration() {
        // Binary inputs converge by halving: 0, 1 -> 1/2 -> 1/4 or 3/4 ...
        let m1 = Dyadic::ZERO.midpoint(Dyadic::ONE);
        assert_eq!(m1, Dyadic::new(1, 1));
        let m2 = Dyadic::ZERO.midpoint(m1);
        assert_eq!(m2, Dyadic::new(1, 2));
        let m3 = m1.midpoint(Dyadic::ONE);
        assert_eq!(m3, Dyadic::new(3, 2));
        // Midpoint of equal values is the value itself.
        assert_eq!(m3.midpoint(m3), m3);
    }

    #[test]
    fn checked_midpoint_detects_exponent_overflow() {
        let deep = Dyadic::new(1, MAX_LOG_DEN);
        // (1/2^62 + 0)/2 = 1/2^63: out of range.
        assert_eq!(deep.checked_midpoint(Dyadic::ZERO), None);
        // (1/2^62 + 1/2^62)/2 = 1/2^62: fine.
        assert_eq!(deep.checked_midpoint(deep), Some(deep));
    }

    #[test]
    fn abs_diff_basic() {
        let a = Dyadic::new(3, 2); // 3/4
        let b = Dyadic::new(1, 1); // 1/2
        assert_eq!(a.abs_diff(b), Dyadic::new(1, 2));
        assert_eq!(b.abs_diff(a), Dyadic::new(1, 2));
        assert_eq!(a.abs_diff(a), Dyadic::ZERO);
    }

    #[test]
    fn ordering_matches_value() {
        let vals = [
            Dyadic::ZERO,
            Dyadic::new(1, 3),
            Dyadic::new(1, 2),
            Dyadic::new(1, 1),
            Dyadic::new(5, 3),
            Dyadic::new(3, 2),
            Dyadic::ONE,
            Dyadic::new(3, 1),
        ];
        let mut sorted = vals;
        sorted.sort();
        let as_f64: Vec<f64> = sorted.iter().map(|d| d.to_f64()).collect();
        let mut expect = as_f64.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(as_f64, expect);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dyadic::new(3, 2).to_string(), "3/2^2");
        assert_eq!(Dyadic::ONE.to_string(), "1");
        assert_eq!(format!("{:?}", Dyadic::new(3, 2)), "Dyadic(3/2^2)");
    }

    #[test]
    fn decode_rejects_out_of_range_exponent() {
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_raw_u8(MAX_LOG_DEN + 1);
        let bytes = w.into_vec();
        assert_eq!(Dyadic::from_bytes(&bytes), Err(WireError::InvalidValue));
    }

    #[test]
    fn decode_normalizes_non_canonical_input() {
        // 2/2^1 should decode equal to 1.
        let mut w = Writer::new();
        w.put_u64(2);
        w.put_raw_u8(1);
        let bytes = w.into_vec();
        assert_eq!(Dyadic::from_bytes(&bytes).unwrap(), Dyadic::ONE);
    }

    fn arb_unit_dyadic(max_exp: u8) -> impl Strategy<Value = Dyadic> {
        (0..=max_exp).prop_flat_map(|e| (0..=(1u64 << e)).prop_map(move |num| Dyadic::new(num, e)))
    }

    proptest! {
        #[test]
        fn prop_roundtrip(d in arb_unit_dyadic(32)) {
            prop_assert_eq!(roundtrip(&d).unwrap(), d);
        }

        #[test]
        fn prop_normalized_invariant(num in 0u64..u32::MAX as u64, e in 0u8..=52) {
            let d = Dyadic::new(num, e);
            prop_assert!(d.num() % 2 == 1 || d.log_den() == 0);
            // Same rational value as the raw inputs.
            let expect = num as f64 / 2f64.powi(i32::from(e));
            prop_assert_eq!(d.to_f64(), expect);
        }

        #[test]
        fn prop_midpoint_between_operands(a in arb_unit_dyadic(30), b in arb_unit_dyadic(30)) {
            let m = a.midpoint(b);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(lo <= m && m <= hi, "mid {m} not within [{lo}, {hi}]");
            // Exactness: m - lo == hi - m.
            prop_assert_eq!(m.abs_diff(lo), hi.abs_diff(m));
        }

        #[test]
        fn prop_midpoint_halves_range(a in arb_unit_dyadic(30), b in arb_unit_dyadic(30)) {
            let m = a.midpoint(b);
            let range = a.abs_diff(b);
            let half = m.abs_diff(a);
            prop_assert_eq!(half.midpoint(half), range.midpoint(Dyadic::ZERO));
        }

        #[test]
        fn prop_ordering_consistent_with_f64(a in arb_unit_dyadic(40), b in arb_unit_dyadic(40)) {
            let cmp = a.cmp(&b);
            let fcmp = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
            prop_assert_eq!(cmp, fcmp);
        }

        #[test]
        fn prop_abs_diff_triangle(a in arb_unit_dyadic(20), b in arb_unit_dyadic(20), c in arb_unit_dyadic(20)) {
            // |a - c| <= |a - b| + |b - c| checked in f64 (sums may not be dyadic-exact).
            let ac = a.abs_diff(c).to_f64();
            let ab = a.abs_diff(b).to_f64();
            let bc = b.abs_diff(c).to_f64();
            prop_assert!(ac <= ab + bc + 1e-12);
        }
    }
}
