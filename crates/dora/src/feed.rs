//! Feed attestations: [`Certificate`]s bound to an `(epoch, asset)` slot.
//!
//! The epoch pipeline produces a stream of agreements, one per
//! `(epoch, asset)`; a serving layer (the `delphi-api` crate) hands those
//! to light clients together with a certificate. A bare [`Certificate`]
//! only attests "some quorum agreed on `k · ε`" — replayable across
//! slots — so the feed variant signs over a fixed-width context derived
//! from the slot address, and verification re-derives that context. A
//! light client holding the deployment's verifier checks a served value
//! offline, without ever running the protocol.

use delphi_crypto::signing::Verifier;
use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{EpochId, InstanceId};

use crate::Certificate;

/// A quorum certificate over one slot of the feed: the `(epoch, asset)`
/// address plus a [`Certificate`] whose signatures cover the slot-bound
/// message (see [`Certificate::message_with_context`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FeedAttestation {
    /// The epoch this value was agreed in.
    pub epoch: EpochId,
    /// The asset instance within the epoch's basket.
    pub asset: InstanceId,
    /// The slot-bound certificate (`value = k · ε`).
    pub cert: Certificate,
}

impl FeedAttestation {
    /// The fixed-width signing context for a slot: a domain tag plus the
    /// big-endian epoch and asset ids. Fixed width keeps the composed
    /// message prefix-free against the bare-certificate encoding.
    pub fn context(epoch: EpochId, asset: InstanceId) -> [u8; 11] {
        let mut ctx = [0u8; 11];
        ctx[..5].copy_from_slice(b"feed:");
        ctx[5..9].copy_from_slice(&epoch.0.to_be_bytes());
        ctx[9..11].copy_from_slice(&asset.0.to_be_bytes());
        ctx
    }

    /// The attested real value `k · ε`.
    pub fn value(&self) -> f64 {
        self.cert.value()
    }

    /// Verifies the certificate against this attestation's own slot:
    /// at least `t + 1` valid signatures from distinct in-range signers
    /// over the slot-bound message. An attestation lifted from another
    /// `(epoch, asset)` never verifies.
    pub fn verify(&self, verifier: &Verifier, n: usize, t: usize) -> bool {
        let ctx = Self::context(self.epoch, self.asset);
        self.cert.verify_with_context(&ctx, verifier, n, t)
    }
}

impl Encode for FeedAttestation {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.epoch);
        w.put(&self.asset);
        w.put(&self.cert);
    }
}

impl Decode for FeedAttestation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FeedAttestation { epoch: r.get()?, asset: r.get()?, cert: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_to_epsilon;
    use delphi_crypto::signing::SigningKey;
    use delphi_primitives::wire::roundtrip;
    use delphi_primitives::NodeId;

    const SEED: &[u8] = b"feed-attest-test";

    fn attest(epoch: EpochId, asset: InstanceId, value: f64, signers: usize) -> FeedAttestation {
        let epsilon = 2.0;
        let k = round_to_epsilon(value, epsilon);
        let ctx = FeedAttestation::context(epoch, asset);
        let msg = Certificate::message_with_context(&ctx, k, epsilon);
        let signatures =
            (0..signers).map(|i| SigningKey::derive(SEED, NodeId(i as u16)).sign(&msg)).collect();
        FeedAttestation { epoch, asset, cert: Certificate { k, epsilon, signatures } }
    }

    #[test]
    fn slot_bound_attestation_verifies_and_roundtrips() {
        let att = attest(EpochId(7), InstanceId(2), 41_237.3, 2);
        let verifier = Verifier::new(SEED);
        assert!(att.verify(&verifier, 4, 1), "t + 1 = 2 distinct signers suffice");
        assert!((att.value() - 41_238.0).abs() < 1e-9);
        assert_eq!(roundtrip(&att).unwrap(), att);
    }

    #[test]
    fn attestation_does_not_verify_for_another_slot_or_seed() {
        let att = attest(EpochId(7), InstanceId(2), 41_237.3, 2);
        let verifier = Verifier::new(SEED);
        // Replay the same certificate under a shifted slot address.
        let moved = FeedAttestation { epoch: EpochId(8), ..att.clone() };
        assert!(!moved.verify(&verifier, 4, 1), "epoch swap must break the binding");
        let moved = FeedAttestation { asset: InstanceId(3), ..att.clone() };
        assert!(!moved.verify(&verifier, 4, 1), "asset swap must break the binding");
        // A verifier from a different deployment seed rejects outright.
        assert!(!att.verify(&Verifier::new(b"other-deployment"), 4, 1));
        // Too few signers: t + 1 is a hard floor.
        let thin = attest(EpochId(7), InstanceId(2), 41_237.3, 1);
        assert!(!thin.verify(&verifier, 4, 1));
    }

    #[test]
    fn empty_context_reproduces_the_bare_certificate_message() {
        assert_eq!(
            Certificate::message_with_context(&[], 99, 2.0),
            Certificate::message_for(99, 2.0),
            "DoraNode attestations must keep verifying unchanged"
        );
    }
}
