//! Multi-process smoke test: a 4-node Delphi cluster, one OS process per
//! node, launched from a generated TOML config over real sockets.
//!
//! Ignored by default because it needs the `delphi-node` binary on disk:
//!
//! ```text
//! cargo build --release -p delphi-bench --bin delphi-node
//! cargo test --release --test cluster_process -- --ignored
//! ```
//!
//! CI runs it behind a dedicated job step. The debug profile works too
//! (`cargo build -p delphi-bench --bin delphi-node` + `cargo test --test
//! cluster_process -- --ignored`); the launcher resolves whichever
//! `delphi-node` sits next to this test binary's profile directory.

use std::sync::{Mutex, MutexGuard};

use delphi_bench::cluster::{run_local_cluster, LOCAL_EPSILON};

/// Serializes the cluster tests: each reserves free loopback ports by
/// binding and releasing them, so two clusters launching concurrently
/// could grab each other's ports in the release-to-rebind window.
static PORT_LOCK: Mutex<()> = Mutex::new(());

fn port_lock() -> MutexGuard<'static, ()> {
    PORT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
#[ignore = "needs the delphi-node binary: cargo build -p delphi-bench --bin delphi-node"]
fn four_node_process_cluster_converges_within_epsilon() {
    let _guard = port_lock();
    let outcome = run_local_cluster(4, "smoke", |spec| {
        spec.deadline_ms = 120_000;
    })
    .expect("cluster run succeeds (is delphi-node built?)");

    assert_eq!(outcome.reports.len(), 4);
    for r in &outcome.reports {
        assert_eq!(r.stats.dropped_frames, 0, "node {} dropped frames", r.id);
        assert!(r.stats.sent_frames > 0 && r.stats.recv_frames > 0, "node {} idle", r.id);
        assert!(r.elapsed_ms > 0.0);
    }
    assert!(
        outcome.converged(LOCAL_EPSILON),
        "outputs spread {:.6}$ exceeds eps {LOCAL_EPSILON}$",
        outcome.spread()
    );
}

#[test]
#[ignore = "needs the delphi-node binary: cargo build -p delphi-bench --bin delphi-node"]
fn hundred_epoch_process_cluster_streams_and_adaptive_flush_beats_per_step() {
    let _guard = port_lock();
    // The streaming-oracle acceptance shape: a 4-node process cluster
    // agreeing on a 4-asset basket 100 consecutive epochs over real
    // sockets, every epoch ε-converged, bounded memory (live-window GC),
    // run twice — per-step and adaptive flushing.
    let epochs = 100u32;
    let assets = 4usize;
    let expected = u64::from(epochs) * assets as u64;
    let run = |tag: &'static str, adaptive: bool| {
        run_local_cluster(4, tag, move |spec| {
            spec.epochs = epochs;
            spec.assets = assets;
            spec.depth = 2;
            spec.window = 6;
            spec.adaptive = adaptive;
            spec.deadline_ms = 300_000;
        })
        .expect("epoch cluster run succeeds")
    };
    let per_step = run("epoch-step", false);
    let adaptive = run("epoch-adaptive", true);

    for outcome in [&per_step, &adaptive] {
        assert!(
            outcome.epoch_converged(LOCAL_EPSILON, expected),
            "stream incomplete or diverged: {} agreements per node (expected {expected}), \
             worst spread {:.6}",
            outcome.epoch_agreements(),
            outcome.epoch_spread()
        );
        for r in &outcome.reports {
            assert_eq!(r.stats.dropped_frames, 0, "node {} dropped frames", r.id);
            assert_eq!(r.agreements.len() as u64, expected, "node {} missed epochs", r.id);
        }
    }
    // Same protocol work per envelope, fewer frames: adaptive flushing
    // must beat per-step on frames per envelope (the runs are independent
    // executions, so compare the schedule-independent per-envelope cost).
    let (b, u) = (adaptive.total_stats(), per_step.total_stats());
    assert!(
        b.sent_frames * u.sent_entries < u.sent_frames * b.sent_entries,
        "adaptive {}/{} vs per-step {}/{} frames per envelope",
        b.sent_frames,
        b.sent_entries,
        u.sent_frames,
        u.sent_entries
    );
}

#[test]
#[ignore = "needs the delphi-node binary: cargo build -p delphi-bench --bin delphi-node"]
fn multi_asset_process_cluster_batches_on_the_wire() {
    let _guard = port_lock();
    // The same 4-process cluster carrying a 3-asset basket per node, run
    // batched and unbatched: the batched deployment must spend fewer
    // frames and MACs for the same protocol work — measured over real
    // sockets, not simulated.
    let batched = run_local_cluster(4, "smoke-batched", |spec| {
        spec.assets = 3;
        spec.deadline_ms = 120_000;
    })
    .expect("batched cluster run succeeds");
    let unbatched = run_local_cluster(4, "smoke-unbatched", |spec| {
        spec.assets = 3;
        spec.unbatched = true;
        spec.deadline_ms = 120_000;
    })
    .expect("unbatched cluster run succeeds");

    assert!(batched.converged(LOCAL_EPSILON) && unbatched.converged(LOCAL_EPSILON));
    // The two runs are *different* asynchronous executions, so absolute
    // frame/byte totals are schedule-dependent (either run may happen to
    // do more protocol work). The schedule-independent facts are the
    // per-envelope costs: unbatched, every envelope pays its own frame;
    // batched, coalescing strictly beats one-frame-per-envelope on
    // frames, MACs, and bytes per envelope.
    let (b, u) = (batched.total_stats(), unbatched.total_stats());
    assert_eq!(u.sent_frames, u.sent_entries, "unbatched: one frame per envelope");
    assert!(
        b.sent_frames < b.sent_entries,
        "batched must coalesce: {} frames for {} envelopes",
        b.sent_frames,
        b.sent_entries
    );
    assert!(
        b.mac_ops * u.sent_entries < u.mac_ops * b.sent_entries,
        "fewer MACs per envelope batched: {}/{} vs {}/{}",
        b.mac_ops,
        b.sent_entries,
        u.mac_ops,
        u.sent_entries
    );
    assert!(
        b.sent_bytes * u.sent_entries < u.sent_bytes * b.sent_entries,
        "fewer wire bytes per envelope batched: {}/{} vs {}/{}",
        b.sent_bytes,
        b.sent_entries,
        u.sent_bytes,
        u.sent_entries
    );
}
