//! Delphi configuration and parameter derivation (Algorithm 2, Setup).
//!
//! Given the statically agreed system parameters `(s, e, ρ_0, Δ, ε)` and
//! the system size `n`, this module derives exactly what Algorithm 2's
//! setup lines compute:
//!
//! ```text
//! l_M = ⌈log2(Δ / ρ_0)⌉            number of levels above level 0
//! ε′  = ε / (4 · Δ · l_M · n)       per-instance weight agreement target
//! r_M = ⌈log2(1 / ε′)⌉              BinAA rounds per instance
//! ```
//!
//! and validates every input (C-VALIDATE): non-finite or empty ranges,
//! non-positive resolutions, and configurations whose `r_M` would exceed
//! the exact-arithmetic cap are rejected with a descriptive
//! [`ConfigError`] instead of misbehaving at run time.

use std::error::Error;
use std::fmt;

/// Maximum supported BinAA round count.
///
/// Weights are exact binary rationals with denominator `2^r_M`
/// ([`Dyadic`](delphi_primitives::Dyadic)); 32 rounds keeps every weight
/// and midpoint exactly representable with a wide margin. The paper's
/// evaluated configurations need `r_M ≈ 19–23`.
pub const MAX_ROUNDS: u16 = 32;

/// Maximum supported level count (level 0 plus `l_M` coarser levels).
pub const MAX_LEVELS: u8 = 48;

/// How a node maps its input value to per-checkpoint binary votes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InputRule {
    /// Input 1 to the two checkpoints adjacent to the input value
    /// (`⌊v/ρ_l⌋` and `⌊v/ρ_l⌋ + 1`), 0 elsewhere — Algorithm 2 line 10–11.
    #[default]
    TwoClosest,
    /// Input 1 to every checkpoint within `ρ_l` of the input value (up to
    /// three) — the §III-B1 prose variant, kept for ablation.
    WithinRho,
}

/// Invalid Delphi configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `n` must be at least 1.
    ZeroNodes,
    /// A numeric parameter was NaN or infinite.
    NonFinite(&'static str),
    /// A parameter that must be strictly positive was not.
    NonPositive(&'static str),
    /// The value space `[s, e]` was empty or inverted.
    EmptySpace {
        /// Lower end supplied.
        s: f64,
        /// Upper end supplied.
        e: f64,
    },
    /// `Δ < ρ_0`: the coarsest level would not cover the input range bound.
    DeltaBelowRho0 {
        /// Supplied `Δ`.
        delta_max: f64,
        /// Supplied `ρ_0`.
        rho0: f64,
    },
    /// Derived `r_M` exceeds [`MAX_ROUNDS`].
    TooManyRounds {
        /// The `r_M` the parameters would need.
        required: u32,
    },
    /// Derived `l_M` exceeds [`MAX_LEVELS`].
    TooManyLevels {
        /// The `l_M` the parameters would need.
        required: u32,
    },
    /// The checkpoint index range would overflow `i64`.
    SpaceTooWide,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroNodes => write!(f, "system size n must be at least 1"),
            ConfigError::NonFinite(p) => write!(f, "parameter {p} must be finite"),
            ConfigError::NonPositive(p) => write!(f, "parameter {p} must be strictly positive"),
            ConfigError::EmptySpace { s, e } => {
                write!(f, "value space [{s}, {e}] is empty")
            }
            ConfigError::DeltaBelowRho0 { delta_max, rho0 } => {
                write!(f, "delta_max {delta_max} must be at least rho0 {rho0}")
            }
            ConfigError::TooManyRounds { required } => {
                write!(f, "parameters need r_M = {required} rounds, maximum is {MAX_ROUNDS}")
            }
            ConfigError::TooManyLevels { required } => {
                write!(f, "parameters need l_M = {required} levels, maximum is {MAX_LEVELS}")
            }
            ConfigError::SpaceTooWide => {
                write!(f, "checkpoint indices for [s, e] at rho0 overflow i64")
            }
        }
    }
}

impl Error for ConfigError {}

/// Complete, validated Delphi protocol configuration.
///
/// Construct via [`DelphiConfig::builder`]. The configuration is shared by
/// all nodes of a deployment (it is part of the common setup, like the
/// paper's statically-set `ρ_0` and `Δ`).
///
/// # Example
///
/// ```
/// use delphi_core::DelphiConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's oracle-network configuration (§VI-A).
/// let cfg = DelphiConfig::builder(160)
///     .space(0.0, 100_000.0)
///     .rho0(2.0)
///     .delta_max(2000.0)
///     .epsilon(2.0)
///     .build()?;
/// assert_eq!(cfg.l_max(), 10);  // ceil(log2(2000/2))
/// assert_eq!(cfg.r_max(), 23);  // ceil(log2(1/eps'))
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DelphiConfig {
    n: usize,
    t: usize,
    s: f64,
    e: f64,
    rho0: f64,
    delta_max: f64,
    epsilon: f64,
    input_rule: InputRule,
    // Derived.
    l_max: u8,
    r_max: u16,
    eps_prime: f64,
}

impl DelphiConfig {
    /// Starts building a configuration for an `n`-node system.
    pub fn builder(n: usize) -> DelphiConfigBuilder {
        DelphiConfigBuilder {
            n,
            s: 0.0,
            e: 1_000_000.0,
            rho0: 1.0,
            delta_max: 1024.0,
            epsilon: 1.0,
            input_rule: InputRule::TwoClosest,
        }
    }

    /// System size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault threshold `t = ⌊(n − 1)/3⌋`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Quorum size `n − t`.
    pub fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Lower end of the value space.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Upper end of the value space.
    pub fn e(&self) -> f64 {
        self.e
    }

    /// Level-0 checkpoint separation `ρ_0`.
    pub fn rho0(&self) -> f64 {
        self.rho0
    }

    /// Assumed bound `Δ` on the honest input range.
    pub fn delta_max(&self) -> f64 {
        self.delta_max
    }

    /// Output agreement distance `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The checkpoint input rule.
    pub fn input_rule(&self) -> InputRule {
        self.input_rule
    }

    /// Highest level index `l_M`; levels are `0..=l_max`.
    pub fn l_max(&self) -> u8 {
        self.l_max
    }

    /// Number of levels (`l_max + 1`).
    pub fn num_levels(&self) -> usize {
        usize::from(self.l_max) + 1
    }

    /// BinAA rounds per instance, `r_M = ⌈log2(1/ε′)⌉`.
    pub fn r_max(&self) -> u16 {
        self.r_max
    }

    /// Per-instance weight agreement target `ε′ = ε / (4 Δ l_M n)`.
    pub fn eps_prime(&self) -> f64 {
        self.eps_prime
    }

    /// Checkpoint separation `ρ_l = 2^l · ρ_0` at `level`.
    pub fn rho_at(&self, level: u8) -> f64 {
        self.rho0 * 2f64.powi(i32::from(level))
    }

    /// Inclusive checkpoint index range `[⌈s/ρ_l⌉, ⌊e/ρ_l⌋]` at `level`.
    pub fn checkpoint_range(&self, level: u8) -> (i64, i64) {
        let rho = self.rho_at(level);
        ((self.s / rho).ceil() as i64, (self.e / rho).floor() as i64)
    }

    /// The value `µ^l_k = k · ρ_l` represented by checkpoint `k` at `level`.
    pub fn checkpoint_value(&self, level: u8, k: i64) -> f64 {
        k as f64 * self.rho_at(level)
    }

    /// The checkpoints to which a node with input `v` votes 1 at `level`,
    /// per the configured [`InputRule`], clamped to the level's range.
    pub fn one_checkpoints(&self, level: u8, v: f64) -> Vec<i64> {
        let rho = self.rho_at(level);
        let (k_min, k_max) = self.checkpoint_range(level);
        let lo = (v / rho).floor() as i64;
        let candidates: Vec<i64> = match self.input_rule {
            InputRule::TwoClosest => vec![lo, lo + 1],
            InputRule::WithinRho => {
                // All k with |v − kρ| ≤ ρ.
                let from = ((v - rho) / rho).ceil() as i64;
                let to = ((v + rho) / rho).floor() as i64;
                (from..=to).collect()
            }
        };
        let mut ks: Vec<i64> = candidates.into_iter().map(|k| k.clamp(k_min, k_max)).collect();
        ks.dedup();
        ks
    }

    /// Clamps an input value into the admissible space `[s, e]`.
    pub fn clamp_input(&self, v: f64) -> f64 {
        v.clamp(self.s, self.e)
    }
}

/// Builder for [`DelphiConfig`] (see there for an example).
#[derive(Clone, Debug)]
pub struct DelphiConfigBuilder {
    n: usize,
    s: f64,
    e: f64,
    rho0: f64,
    delta_max: f64,
    epsilon: f64,
    input_rule: InputRule,
}

impl DelphiConfigBuilder {
    /// Sets the admissible value space `[s, e]`.
    pub fn space(mut self, s: f64, e: f64) -> Self {
        self.s = s;
        self.e = e;
        self
    }

    /// Sets the level-0 checkpoint separation `ρ_0`.
    pub fn rho0(mut self, rho0: f64) -> Self {
        self.rho0 = rho0;
        self
    }

    /// Sets the honest-input range bound `Δ`.
    pub fn delta_max(mut self, delta_max: f64) -> Self {
        self.delta_max = delta_max;
        self
    }

    /// Sets the agreement distance `ε`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the checkpoint input rule (default: [`InputRule::TwoClosest`]).
    pub fn input_rule(mut self, rule: InputRule) -> Self {
        self.input_rule = rule;
        self
    }

    /// Validates the parameters and derives `l_M`, `ε′`, and `r_M`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn build(self) -> Result<DelphiConfig, ConfigError> {
        let DelphiConfigBuilder { n, s, e, rho0, delta_max, epsilon, input_rule } = self;
        if n == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        for (name, v) in
            [("s", s), ("e", e), ("rho0", rho0), ("delta_max", delta_max), ("epsilon", epsilon)]
        {
            if !v.is_finite() {
                return Err(ConfigError::NonFinite(name));
            }
        }
        for (name, v) in [("rho0", rho0), ("delta_max", delta_max), ("epsilon", epsilon)] {
            if v <= 0.0 {
                return Err(ConfigError::NonPositive(name));
            }
        }
        if e <= s {
            return Err(ConfigError::EmptySpace { s, e });
        }
        if delta_max < rho0 {
            return Err(ConfigError::DeltaBelowRho0 { delta_max, rho0 });
        }
        // Checkpoint indices at level 0 must fit comfortably in i64.
        if (s / rho0).abs() > 1e15 || (e / rho0).abs() > 1e15 {
            return Err(ConfigError::SpaceTooWide);
        }

        let t = (n - 1) / 3;
        // l_M = ceil(log2(Δ/ρ0)); Δ = ρ0 gives a single level (l_M = 0).
        let l_max_f = (delta_max / rho0).log2().ceil().max(0.0);
        if l_max_f > f64::from(MAX_LEVELS) {
            return Err(ConfigError::TooManyLevels { required: l_max_f as u32 });
        }
        let l_max = l_max_f as u8;
        // ε′ = ε / (4 Δ l_M n), with l_M clamped to ≥ 1 so the single-level
        // configuration stays well-defined.
        let lm_for_eps = f64::from(l_max).max(1.0);
        let eps_prime = epsilon / (4.0 * delta_max * lm_for_eps * n as f64);
        let r_max_f = (1.0 / eps_prime).log2().ceil().max(1.0);
        if r_max_f > f64::from(MAX_ROUNDS) {
            return Err(ConfigError::TooManyRounds { required: r_max_f as u32 });
        }
        let r_max = r_max_f as u16;

        Ok(DelphiConfig {
            n,
            t,
            s,
            e,
            rho0,
            delta_max,
            epsilon,
            input_rule,
            l_max,
            r_max,
            eps_prime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_cfg(n: usize) -> DelphiConfig {
        DelphiConfig::builder(n)
            .space(0.0, 100_000.0)
            .rho0(2.0)
            .delta_max(2000.0)
            .epsilon(2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_oracle_parameters() {
        // §VI-A: ρ0 = ε = 2$, Δ = 2000$, n = 160.
        let cfg = oracle_cfg(160);
        assert_eq!(cfg.l_max(), 10); // log2(1000) = 9.97 -> 10
        assert_eq!(cfg.num_levels(), 11);
        // ε' = 2 / (4·2000·10·160) = 1.5625e-7; r_M = ceil(log2(6.4e6)) = 23.
        assert!((cfg.eps_prime() - 1.5625e-7).abs() < 1e-12);
        assert_eq!(cfg.r_max(), 23);
        assert_eq!(cfg.t(), 53);
        assert_eq!(cfg.quorum(), 107);
    }

    #[test]
    fn paper_cps_parameters() {
        // §VI-B: ρ0 = ε = 0.5 m, Δ = 50 m, n = 169.
        let cfg = DelphiConfig::builder(169)
            .space(-10_000.0, 10_000.0)
            .rho0(0.5)
            .delta_max(50.0)
            .epsilon(0.5)
            .build()
            .unwrap();
        assert_eq!(cfg.l_max(), 7); // ceil(log2(100))
                                    // ε' = 0.5/(4·50·7·169) = 2.11e-6 -> r_M = ceil(log2(473200)) = 19.
        assert_eq!(cfg.r_max(), 19);
    }

    #[test]
    fn rho_doubles_per_level() {
        let cfg = oracle_cfg(16);
        assert_eq!(cfg.rho_at(0), 2.0);
        assert_eq!(cfg.rho_at(1), 4.0);
        assert_eq!(cfg.rho_at(10), 2048.0);
    }

    #[test]
    fn checkpoint_range_and_values() {
        let cfg = DelphiConfig::builder(4)
            .space(0.0, 100.0)
            .rho0(10.0)
            .delta_max(40.0)
            .epsilon(10.0)
            .build()
            .unwrap();
        assert_eq!(cfg.checkpoint_range(0), (0, 10));
        assert_eq!(cfg.checkpoint_value(0, 3), 30.0);
        assert_eq!(cfg.checkpoint_range(1), (0, 5));
        assert_eq!(cfg.checkpoint_value(1, 3), 60.0);
    }

    #[test]
    fn negative_space_checkpoints() {
        let cfg = DelphiConfig::builder(4)
            .space(-100.0, 100.0)
            .rho0(10.0)
            .delta_max(40.0)
            .epsilon(10.0)
            .build()
            .unwrap();
        assert_eq!(cfg.checkpoint_range(0), (-10, 10));
        assert_eq!(cfg.checkpoint_value(0, -3), -30.0);
    }

    #[test]
    fn two_closest_rule() {
        let cfg = DelphiConfig::builder(4)
            .space(0.0, 100.0)
            .rho0(10.0)
            .delta_max(40.0)
            .epsilon(10.0)
            .build()
            .unwrap();
        assert_eq!(cfg.one_checkpoints(0, 34.0), vec![3, 4]);
        // Exactly on a checkpoint: k and k+1 (ties go right).
        assert_eq!(cfg.one_checkpoints(0, 30.0), vec![3, 4]);
        // Clamped at the space edge.
        assert_eq!(cfg.one_checkpoints(0, 99.0), vec![9, 10]);
        assert_eq!(cfg.one_checkpoints(0, 100.0), vec![10]);
        assert_eq!(cfg.one_checkpoints(0, 0.0), vec![0, 1]);
    }

    #[test]
    fn within_rho_rule() {
        let cfg = DelphiConfig::builder(4)
            .space(0.0, 100.0)
            .rho0(10.0)
            .delta_max(40.0)
            .epsilon(10.0)
            .input_rule(InputRule::WithinRho)
            .build()
            .unwrap();
        // |34 − k·10| ≤ 10 for k ∈ {3, 4}.
        assert_eq!(cfg.one_checkpoints(0, 34.0), vec![3, 4]);
        // Exactly on checkpoint 3: k ∈ {2, 3, 4}.
        assert_eq!(cfg.one_checkpoints(0, 30.0), vec![2, 3, 4]);
    }

    #[test]
    fn clamp_input() {
        let cfg = oracle_cfg(4);
        assert_eq!(cfg.clamp_input(-5.0), 0.0);
        assert_eq!(cfg.clamp_input(42.0), 42.0);
        assert_eq!(cfg.clamp_input(1e9), 100_000.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let base =
            || DelphiConfig::builder(4).space(0.0, 100.0).rho0(1.0).delta_max(10.0).epsilon(1.0);
        assert_eq!(DelphiConfig::builder(0).build().unwrap_err(), ConfigError::ZeroNodes);
        assert_eq!(
            base().epsilon(f64::NAN).build().unwrap_err(),
            ConfigError::NonFinite("epsilon")
        );
        assert_eq!(base().rho0(0.0).build().unwrap_err(), ConfigError::NonPositive("rho0"));
        assert_eq!(
            base().space(5.0, 5.0).build().unwrap_err(),
            ConfigError::EmptySpace { s: 5.0, e: 5.0 }
        );
        assert_eq!(
            base().delta_max(0.5).build().unwrap_err(),
            ConfigError::DeltaBelowRho0 { delta_max: 0.5, rho0: 1.0 }
        );
        assert!(matches!(
            base().epsilon(1e-9).build().unwrap_err(),
            ConfigError::TooManyRounds { .. }
        ));
        assert!(matches!(
            base().space(0.0, 1e18).rho0(1e-3).delta_max(1.0).epsilon(1e-1).build().unwrap_err(),
            ConfigError::SpaceTooWide
        ));
    }

    #[test]
    fn single_level_config_is_valid() {
        // Δ = ρ0: one level only.
        let cfg = DelphiConfig::builder(7)
            .space(0.0, 10.0)
            .rho0(1.0)
            .delta_max(1.0)
            .epsilon(0.5)
            .build()
            .unwrap();
        assert_eq!(cfg.l_max(), 0);
        assert_eq!(cfg.num_levels(), 1);
        assert!(cfg.r_max() >= 1);
    }

    #[test]
    fn fault_threshold_floors() {
        for (n, t) in [(1, 0), (3, 0), (4, 1), (7, 2), (16, 5), (160, 53)] {
            let cfg = DelphiConfig::builder(n)
                .space(0.0, 10.0)
                .rho0(1.0)
                .delta_max(2.0)
                .epsilon(1.0)
                .build()
                .unwrap();
            assert_eq!(cfg.t(), t, "n = {n}");
        }
    }

    #[test]
    fn error_display_messages() {
        let errs: Vec<ConfigError> = vec![
            ConfigError::ZeroNodes,
            ConfigError::NonFinite("x"),
            ConfigError::NonPositive("y"),
            ConfigError::EmptySpace { s: 1.0, e: 0.0 },
            ConfigError::DeltaBelowRho0 { delta_max: 1.0, rho0: 2.0 },
            ConfigError::TooManyRounds { required: 50 },
            ConfigError::TooManyLevels { required: 99 },
            ConfigError::SpaceTooWide,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
