//! The §II-C communication optimization: `VAL` state-shift messages.
//!
//! Plain BinAA sends the full state value in every echo. The optimized
//! variant observes that a node's round-`r` state moves by at most two
//! grid steps per round, so the *initial* echo of each round can be a
//! 5-way code — `2L, L, C, R, 2R` — relative to the sender's previous
//! round: `value_r = value_{r−1} + c/2^{r−1}` with `c ∈ {−2..2}`.
//! Amplification `ECHO1`s and `ECHO2`s are likewise coded as small offsets
//! from the sender's own round value. Receivers reconstruct each sender's
//! value *trajectory* FIFO-style (the paper's "waits for all VAL messages
//! from rounds 1..r"), buffering echoes that arrive before the trajectory
//! prefix they need.
//!
//! This drops the per-message payload from `O(log(1/ε))` bits (a full
//! dyadic) to `O(log log(1/ε))` bits (a code plus the round number) — the
//! `log log` factor in Delphi's Table I row. [`CompactBinAaNode`] is
//! behaviourally interchangeable with [`BinAaNode`](crate::BinAaNode);
//! the benches compare their bandwidth.

use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Dyadic, Envelope, NodeId, Protocol, Round};

use crate::bv::{BvAction, BvRound};
use crate::messages::EchoKind;
use crate::params::MAX_ROUNDS;

/// Maximum buffered out-of-order echoes per sender.
const MAX_PENDING_PER_SENDER: usize = 4 * MAX_ROUNDS as usize;

/// A compact BinAA message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactMsg {
    /// Round this message belongs to.
    pub round: Round,
    /// What the code means.
    pub kind: CompactKind,
    /// Shift code. For `Val` in round 1 this is the raw input bit (0/1);
    /// for later `Val`s it is the state shift `c ∈ {−2..2}`; for echoes it
    /// is the offset of the echoed value from the sender's own round
    /// value, in grid steps.
    pub code: i8,
}

/// Message role within the compact encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactKind {
    /// Initial round echo carrying a trajectory code (replaces the plain
    /// initial `ECHO1`).
    Val,
    /// Amplification `ECHO1`, coded relative to the sender's own value.
    Echo1,
    /// `ECHO2`, coded relative to the sender's own value.
    Echo2,
}

impl Encode for CompactMsg {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.round);
        w.put_raw_u8(match self.kind {
            CompactKind::Val => 0,
            CompactKind::Echo1 => 1,
            CompactKind::Echo2 => 2,
        });
        w.put_i64(i64::from(self.code));
    }
}

impl Decode for CompactMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let round = r.get::<Round>()?;
        let kind = match r.get_raw_u8()? {
            0 => CompactKind::Val,
            1 => CompactKind::Echo1,
            2 => CompactKind::Echo2,
            d => return Err(WireError::InvalidDiscriminant(u64::from(d))),
        };
        let code = r.get_i64()?;
        let code = i8::try_from(code).map_err(|_| WireError::InvalidValue)?;
        Ok(CompactMsg { round, kind, code })
    }
}

/// Converts a dyadic in `[0,1]` to its position on the round-`r` grid
/// `j / 2^{r−1}`, if it lies on that grid.
fn to_grid(v: Dyadic, round: Round) -> Option<i64> {
    let g = round.0.checked_sub(1)?;
    let ld = u16::from(v.log_den());
    if ld > g {
        return None;
    }
    Some((v.num() << (g - ld)) as i64)
}

/// Converts a round-`r` grid position back to a dyadic, validating range.
fn from_grid(j: i64, round: Round) -> Option<Dyadic> {
    let g = round.0 - 1;
    if g > 62 || j < 0 || j > (1i64 << g.min(62)) {
        return None;
    }
    Dyadic::try_new(j as u64, g as u8).ok().filter(|d| d.in_unit_interval())
}

/// Per-sender trajectory reconstruction state.
#[derive(Clone, Debug)]
struct SenderChain {
    /// `Val` codes per round (index `round − 1`).
    codes: Vec<Option<i8>>,
    /// Reconstructed state values entering each round.
    resolved: Vec<Option<Dyadic>>,
    /// Echoes waiting for their round's trajectory value.
    pending: Vec<(Round, EchoKind, i8)>,
    /// Sender emitted an impossible trajectory: ignore it from now on.
    poisoned: bool,
}

impl SenderChain {
    fn new(r_max: u16) -> SenderChain {
        SenderChain {
            codes: vec![None; usize::from(r_max)],
            resolved: vec![None; usize::from(r_max)],
            pending: Vec::new(),
            poisoned: false,
        }
    }

    /// Stores a `Val` code and extends the resolved prefix. Returns the
    /// rounds newly resolved as `(round, value)` — each counts as an
    /// `ECHO1` for that round.
    fn add_code(&mut self, round: Round, code: i8) -> Vec<(Round, Dyadic)> {
        if self.poisoned || self.codes[round.index()].is_some() {
            return Vec::new(); // duplicate VALs are Byzantine; first wins
        }
        self.codes[round.index()] = Some(code);
        let mut newly = Vec::new();
        // Extend the resolved prefix as far as codes allow.
        for r in 0..self.codes.len() {
            if self.resolved[r].is_some() {
                continue;
            }
            let Some(code) = self.codes[r] else { break };
            let value = if r == 0 {
                match code {
                    0 => Dyadic::ZERO,
                    1 => Dyadic::ONE,
                    _ => {
                        self.poisoned = true;
                        return newly;
                    }
                }
            } else {
                let round = Round((r + 1) as u16);
                let prev = self.resolved[r - 1].expect("prefix resolved");
                // value_r = value_{r−1} + c / 2^{r−1}.
                let Some(prev_j) = to_grid(prev, round) else {
                    self.poisoned = true;
                    return newly;
                };
                if !(-2..=2).contains(&code) {
                    self.poisoned = true;
                    return newly;
                }
                match from_grid(prev_j + i64::from(code), round) {
                    Some(v) => v,
                    None => {
                        self.poisoned = true;
                        return newly;
                    }
                }
            };
            self.resolved[r] = Some(value);
            newly.push((Round((r + 1) as u16), value));
        }
        newly
    }

    /// Resolves an echo code against the sender's trajectory, or buffers it.
    fn resolve_echo(
        &mut self,
        round: Round,
        kind: EchoKind,
        code: i8,
    ) -> Option<(Round, EchoKind, Dyadic)> {
        if self.poisoned {
            return None;
        }
        match self.resolved[round.index()] {
            Some(own) => {
                let j = to_grid(own, round)?;
                let value = from_grid(j + i64::from(code), round)?;
                Some((round, kind, value))
            }
            None => {
                if self.pending.len() < MAX_PENDING_PER_SENDER {
                    self.pending.push((round, kind, code));
                }
                None
            }
        }
    }

    /// Drains buffered echoes that have become resolvable.
    fn drain_pending(&mut self) -> Vec<(Round, EchoKind, Dyadic)> {
        if self.poisoned {
            self.pending.clear();
            return Vec::new();
        }
        let mut ready = Vec::new();
        let resolved = &self.resolved;
        self.pending.retain(|&(round, kind, code)| {
            if let Some(own) = resolved[round.index()] {
                if let Some(j) = to_grid(own, round) {
                    if let Some(value) = from_grid(j + i64::from(code), round) {
                        ready.push((round, kind, value));
                    }
                }
                false // resolvable (even if invalid): drop from buffer
            } else {
                true
            }
        });
        ready
    }
}

/// BinAA with the compact `VAL`/shift-code wire format.
///
/// Interchangeable with [`BinAaNode`](crate::BinAaNode) — all nodes in a
/// deployment must use the same variant. See the
/// [module docs](self) for the encoding.
#[derive(Debug)]
pub struct CompactBinAaNode {
    me: NodeId,
    n: usize,
    t: usize,
    r_max: u16,
    rounds: Vec<Option<BvRound>>,
    current: u16,
    value: Dyadic,
    /// Own state value entering each round (the trajectory we announce).
    own_values: Vec<Dyadic>,
    chains: Vec<SenderChain>,
    output: Option<Dyadic>,
}

impl CompactBinAaNode {
    /// Creates a compact BinAA node. Same contract as
    /// [`BinAaNode::new`](crate::BinAaNode::new).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1`, `me` is out of range, or
    /// `r_max ∉ 1..=`[`MAX_ROUNDS`].
    pub fn new(me: NodeId, n: usize, t: usize, input: bool, r_max: u16) -> CompactBinAaNode {
        assert!(n > 3 * t, "BinAA requires n >= 3t + 1");
        assert!(me.index() < n, "node id out of range");
        assert!((1..=MAX_ROUNDS).contains(&r_max), "r_max must be in 1..={MAX_ROUNDS}");
        CompactBinAaNode {
            me,
            n,
            t,
            r_max,
            rounds: std::iter::repeat_with(|| None).take(usize::from(r_max)).collect(),
            current: 1,
            value: Dyadic::from_bit(input),
            own_values: Vec::with_capacity(usize::from(r_max)),
            chains: (0..n).map(|_| SenderChain::new(r_max)).collect(),
            output: None,
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Dyadic>> {
        Box::new(self)
    }

    fn round_mut(&mut self, round: Round) -> &mut BvRound {
        let (me, n, t) = (self.me, self.n, self.t);
        self.rounds[round.index()].get_or_insert_with(|| BvRound::new(me, n, t))
    }

    /// Encodes one of our BvActions as a compact message, if expressible.
    fn encode_action(&self, round: Round, action: BvAction) -> Option<CompactMsg> {
        let own = *self.own_values.get(round.index())?;
        let (kind, value) = match action {
            BvAction::Echo1(v) => (CompactKind::Echo1, v),
            BvAction::Echo2(v) => (CompactKind::Echo2, v),
        };
        let own_j = to_grid(own, round)?;
        let v_j = to_grid(value, round)?;
        let code = i8::try_from(v_j - own_j).ok()?;
        Some(CompactMsg { round, kind, code })
    }

    /// Enters rounds whose predecessors have terminated, emitting `Val`
    /// trajectory codes; records the final output after round `r_max`.
    fn advance(&mut self, out: &mut Vec<CompactMsg>, extra: &mut Vec<(Round, BvAction)>) {
        while self.current <= self.r_max {
            let round = Round(self.current);
            if self.own_values.len() < usize::from(self.current) {
                // Entering `round` for the first time: announce the code.
                let code = if round == Round::FIRST {
                    i8::try_from(self.value.num()).expect("bit")
                } else {
                    let prev = self.own_values[round.index() - 1];
                    let prev_j = to_grid(prev, round).expect("own trajectory on grid");
                    let cur_j = to_grid(self.value, round).expect("own value on grid");
                    i8::try_from(cur_j - prev_j).expect("shift within ±2")
                };
                self.own_values.push(self.value);
                out.push(CompactMsg { round, kind: CompactKind::Val, code });
                let value = self.value;
                let actions = self.round_mut(round).set_input(value);
                extra.extend(actions.into_iter().map(|a| (round, a)));
            }
            let Some(bv) = self.rounds[round.index()].as_ref() else { break };
            let Some(outcome) = bv.outcome() else { break };
            self.value = outcome.next_value();
            self.current += 1;
            if self.current > self.r_max {
                self.output = Some(self.value);
            }
        }
    }

    fn feed(
        &mut self,
        from: NodeId,
        round: Round,
        kind: EchoKind,
        value: Dyadic,
    ) -> Vec<(Round, BvAction)> {
        if u16::from(value.log_den()) >= round.0 || !value.in_unit_interval() {
            return Vec::new();
        }
        let bv = self.round_mut(round);
        let actions = match kind {
            EchoKind::Echo1 => bv.on_echo1(from, value),
            EchoKind::Echo2 => bv.on_echo2(from, value),
        };
        actions.into_iter().map(|a| (round, a)).collect()
    }

    fn finish_step(
        &mut self,
        mut msgs: Vec<CompactMsg>,
        mut extra: Vec<(Round, BvAction)>,
    ) -> Vec<Envelope> {
        // Actions triggered by quorums; advancing can trigger more actions
        // and vice versa, so iterate to quiescence.
        loop {
            let mut new_msgs = Vec::new();
            self.advance(&mut new_msgs, &mut extra);
            let had = new_msgs.is_empty() && extra.is_empty();
            for (round, action) in std::mem::take(&mut extra) {
                // Initial ECHO1s duplicate the Val announcement; skip them.
                if matches!(action, BvAction::Echo1(v) if self.own_values.get(round.index()) == Some(&v))
                {
                    continue;
                }
                if let Some(m) = self.encode_action(round, action) {
                    new_msgs.push(m);
                }
            }
            msgs.extend(new_msgs);
            if had {
                break;
            }
        }
        msgs.into_iter().map(|m| Envelope::to_all(m.to_bytes())).collect()
    }
}

impl Protocol for CompactBinAaNode {
    type Output = Dyadic;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.finish_step(Vec::new(), Vec::new())
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if from.index() >= self.n || from == self.me {
            return Vec::new();
        }
        let Ok(msg) = CompactMsg::from_bytes(payload) else {
            return Vec::new();
        };
        if msg.round.0 < 1 || msg.round.0 > self.r_max {
            return Vec::new();
        }
        let mut extra: Vec<(Round, BvAction)> = Vec::new();
        match msg.kind {
            CompactKind::Val => {
                let newly = self.chains[from.index()].add_code(msg.round, msg.code);
                for (round, value) in newly {
                    extra.extend(self.feed(from, round, EchoKind::Echo1, value));
                }
                let ready = self.chains[from.index()].drain_pending();
                for (round, kind, value) in ready {
                    extra.extend(self.feed(from, round, kind, value));
                }
            }
            CompactKind::Echo1 | CompactKind::Echo2 => {
                let kind =
                    if msg.kind == CompactKind::Echo1 { EchoKind::Echo1 } else { EchoKind::Echo2 };
                if let Some((round, kind, value)) =
                    self.chains[from.index()].resolve_echo(msg.round, kind, msg.code)
                {
                    extra.extend(self.feed(from, round, kind, value));
                }
            }
        }
        self.finish_step(Vec::new(), extra)
    }

    fn output(&self) -> Option<Dyadic> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;
    use delphi_sim::adversary::Crash;
    use delphi_sim::{Simulation, Topology};
    use proptest::prelude::*;

    #[test]
    fn grid_conversions_roundtrip() {
        for r in 1..=10u16 {
            let round = Round(r);
            for j in 0..=(1i64 << (r - 1)) {
                let v = from_grid(j, round).unwrap();
                assert_eq!(to_grid(v, round), Some(j), "round {r} grid {j}");
            }
        }
        // Off-grid and out-of-range values.
        assert_eq!(to_grid(Dyadic::new(1, 3), Round(2)), None);
        assert_eq!(from_grid(-1, Round(3)), None);
        assert_eq!(from_grid(5, Round(3)), None); // 5/4 > 1
    }

    #[test]
    fn compact_msg_roundtrip() {
        for kind in [CompactKind::Val, CompactKind::Echo1, CompactKind::Echo2] {
            for code in [-2i8, -1, 0, 1, 2] {
                let m = CompactMsg { round: Round(5), kind, code };
                assert_eq!(roundtrip(&m).unwrap(), m);
            }
        }
        // Compactness: 3 bytes for typical messages.
        let m = CompactMsg { round: Round(23), kind: CompactKind::Val, code: -2 };
        assert!(m.to_bytes().len() <= 3, "compact message is small");
    }

    #[test]
    fn chain_resolves_trajectory() {
        let mut c = SenderChain::new(4);
        // Round 1: bit 1. Round 2: shift -1 (1 -> 1/2).
        let r1 = c.add_code(Round(1), 1);
        assert_eq!(r1, vec![(Round(1), Dyadic::ONE)]);
        let r2 = c.add_code(Round(2), -1);
        assert_eq!(r2, vec![(Round(2), Dyadic::new(1, 1))]);
        // Out-of-order: round 4 before round 3.
        assert!(c.add_code(Round(4), 0).is_empty());
        let r34 = c.add_code(Round(3), 1);
        assert_eq!(r34, vec![(Round(3), Dyadic::new(3, 2)), (Round(4), Dyadic::new(3, 2))]);
    }

    #[test]
    fn chain_poisons_on_invalid_codes() {
        let mut c = SenderChain::new(4);
        assert!(c.add_code(Round(1), 7).is_empty()); // bit must be 0/1
        assert!(c.poisoned);
        assert!(c.add_code(Round(2), 0).is_empty());

        let mut c = SenderChain::new(4);
        let _ = c.add_code(Round(1), 0);
        // Shift below the grid floor: 0 - 2 steps < 0.
        assert!(c.add_code(Round(2), -2).is_empty());
        assert!(c.poisoned);
    }

    #[test]
    fn echoes_buffer_until_trajectory_known() {
        let mut c = SenderChain::new(4);
        assert_eq!(c.resolve_echo(Round(2), EchoKind::Echo1, 1), None);
        assert_eq!(c.pending.len(), 1);
        let _ = c.add_code(Round(1), 0);
        let _ = c.add_code(Round(2), 1); // value 1/2
        let drained = c.drain_pending();
        assert_eq!(drained, vec![(Round(2), EchoKind::Echo1, Dyadic::ONE)]);
        assert!(c.pending.is_empty());
    }

    fn run_compact(n: usize, t: usize, r_max: u16, inputs: &[bool], seed: u64) -> Vec<Dyadic> {
        let nodes: Vec<Box<dyn Protocol<Output = Dyadic>>> = NodeId::all(n)
            .map(|id| CompactBinAaNode::new(id, n, t, inputs[id.index()], r_max).boxed())
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).run(nodes);
        assert!(report.all_honest_finished(), "compact BinAA stalled: {:?}", report.stop);
        report.honest_outputs().copied().collect()
    }

    #[test]
    fn compact_reaches_agreement() {
        let outs = run_compact(4, 1, 8, &[true, false, true, false], 5);
        let tol = Dyadic::new(1, 8);
        for a in &outs {
            assert!(a.in_unit_interval());
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol);
            }
        }
    }

    #[test]
    fn compact_unanimous_validity() {
        for bit in [false, true] {
            let outs = run_compact(4, 1, 6, &[bit; 4], 6);
            for o in outs {
                assert_eq!(o, Dyadic::from_bit(bit));
            }
        }
    }

    #[test]
    fn compact_tolerates_crash() {
        let n = 7;
        let inputs = [true, false, true, true, false, true, true];
        let nodes: Vec<Box<dyn Protocol<Output = Dyadic>>> = NodeId::all(n)
            .map(|id| {
                if id.index() == 6 {
                    Box::new(Crash::new(id, n))
                } else {
                    CompactBinAaNode::new(id, n, 2, inputs[id.index()], 8).boxed()
                }
            })
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(8).faulty(&[NodeId(6)]).run(nodes);
        assert!(report.all_honest_finished());
        let outs: Vec<Dyadic> = report.honest_outputs().copied().collect();
        let tol = Dyadic::new(1, 8);
        for a in &outs {
            for b in &outs {
                assert!(a.abs_diff(*b) <= tol);
            }
        }
    }

    #[test]
    fn compact_uses_less_bandwidth_than_plain() {
        let n = 7;
        let inputs = [true, false, true, false, true, false, true];
        let r_max = 10;
        let plain_nodes: Vec<Box<dyn Protocol<Output = Dyadic>>> = NodeId::all(n)
            .map(|id| crate::BinAaNode::new(id, n, 2, inputs[id.index()], r_max).boxed())
            .collect();
        let plain = Simulation::new(Topology::lan(n)).seed(9).run(plain_nodes);
        let compact_nodes: Vec<Box<dyn Protocol<Output = Dyadic>>> = NodeId::all(n)
            .map(|id| CompactBinAaNode::new(id, n, 2, inputs[id.index()], r_max).boxed())
            .collect();
        let compact = Simulation::new(Topology::lan(n)).seed(9).run(compact_nodes);
        assert!(
            compact.metrics.total_payload_bytes() < plain.metrics.total_payload_bytes(),
            "compact {} >= plain {}",
            compact.metrics.total_payload_bytes(),
            plain.metrics.total_payload_bytes()
        );
    }

    #[test]
    fn malformed_messages_ignored() {
        let mut node = CompactBinAaNode::new(NodeId(0), 4, 1, true, 4);
        let _ = node.start();
        assert!(node.on_message(NodeId(1), b"junk").is_empty());
        let bad = CompactMsg { round: Round(9), kind: CompactKind::Val, code: 0 };
        assert!(node.on_message(NodeId(1), &bad.to_bytes()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_compact_agreement(
            n in 4usize..8,
            bits in proptest::collection::vec(any::<bool>(), 8),
            r_max in 2u16..8,
            seed in 0u64..u64::MAX,
        ) {
            let t = (n - 1) / 3;
            let outs = run_compact(n, t, r_max, &bits[..n], seed);
            let tol = Dyadic::new(1, r_max as u8);
            for a in &outs {
                prop_assert!(a.in_unit_interval());
                for b in &outs {
                    prop_assert!(a.abs_diff(*b) <= tol);
                }
            }
        }
    }
}
