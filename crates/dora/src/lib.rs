//! The Distributed Oracle Agreement (DORA) layer over Delphi (§V).
//!
//! An oracle network must hand the blockchain a *succinctly attested*
//! value, not just reach internal agreement. The paper's extension:
//!
//! 1. run Delphi; 2. round the output to the closest multiple of `ε`;
//! 3. broadcast a signature over the rounded value; 4. aggregate `t + 1`
//!    signatures on one value into a certificate for the SMR channel.
//!
//! Because Delphi guarantees ε-agreement, the rounded outputs of honest
//! nodes land on **at most two adjacent multiples** of `ε`, so at least
//! one multiple gathers `t + 1` honest signatures and no third value can
//! ever be certified. The rounding costs one extra `ε` of validity
//! relaxation (Table III's validity column).
//!
//! - [`round_to_epsilon`]: the rounding rule;
//! - [`DoraNode`]: a [`Protocol`](delphi_primitives::Protocol) wrapper
//!   that runs an inner Delphi node and then the attestation exchange,
//!   counting signature operations for the Table III comparison;
//! - [`Certificate`]: the aggregate the SMR channel verifies;
//! - [`FeedAttestation`]: a certificate bound to an `(epoch, asset)`
//!   slot of the streaming feed, for offline light-client checks;
//! - [`SmrChannel`]: a simulated total-order ledger that accepts the
//!   first valid certificate(s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attest;
mod feed;
mod smr;

pub use attest::{round_to_epsilon, Certificate, DoraMsg, DoraNode, OpCounts};
pub use feed::FeedAttestation;
pub use smr::SmrChannel;
