//! Protocol-agnostic Byzantine node behaviours.
//!
//! The paper assumes an adaptive adversary corrupting up to `t < n/3` nodes
//! that fully controls their behaviour and the network schedule (but cannot
//! drop messages between honest nodes). These adapters implement the
//! *byte-level* part of that power — staying silent, spewing garbage,
//! corrupting, and replaying — without knowing anything about the protocol
//! being attacked, so every protocol in the workspace can be exercised
//! against them. Value-level (semantic) equivocation attacks live next to
//! each protocol's own tests, where the message schema is known.
//!
//! All behaviours are deterministic given their construction seed.

use std::marker::PhantomData;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use delphi_primitives::{Envelope, NodeId, Protocol};

/// A crashed node: never sends, never outputs.
#[derive(Debug)]
pub struct Crash<O> {
    id: NodeId,
    n: usize,
    _output: PhantomData<O>,
}

impl<O> Crash<O> {
    /// Creates a crashed node with identity `id` in an `n`-node system.
    pub fn new(id: NodeId, n: usize) -> Crash<O> {
        Crash { id, n, _output: PhantomData }
    }
}

impl<O: Clone + std::fmt::Debug> Protocol for Crash<O> {
    type Output = O;
    fn node_id(&self) -> NodeId {
        self.id
    }
    fn n(&self) -> usize {
        self.n
    }
    fn start(&mut self) -> Vec<Envelope> {
        Vec::new()
    }
    fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
        Vec::new()
    }
    fn output(&self) -> Option<O> {
        None
    }
    fn is_finished(&self) -> bool {
        true
    }
}

/// Wraps an honest node and crashes it after it has processed
/// `messages_before_crash` messages — the classic mid-protocol failure.
#[derive(Debug)]
pub struct SilentAfter<P> {
    inner: P,
    remaining: usize,
}

impl<P> SilentAfter<P> {
    /// Wraps `inner`, letting it process `messages_before_crash` messages
    /// (plus its `start`) before going silent.
    pub fn new(inner: P, messages_before_crash: usize) -> SilentAfter<P> {
        SilentAfter { inner, remaining: messages_before_crash }
    }
}

impl<P: Protocol> Protocol for SilentAfter<P> {
    type Output = P::Output;
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn start(&mut self) -> Vec<Envelope> {
        self.inner.start()
    }
    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if self.remaining == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        self.inner.on_message(from, payload)
    }
    fn output(&self) -> Option<P::Output> {
        None // a crashed node's output is irrelevant
    }
    fn is_finished(&self) -> bool {
        self.remaining == 0
    }
}

/// Sends bursts of random bytes to everyone, forever.
///
/// Exercises every decoder's malformed-input paths and the protocols'
/// bounded-state discipline (a correct protocol must neither crash nor
/// allocate unboundedly when flooded).
#[derive(Debug)]
pub struct GarbageSpammer<O> {
    id: NodeId,
    n: usize,
    rng: StdRng,
    burst: usize,
    max_len: usize,
    budget: usize,
    _output: PhantomData<O>,
}

impl<O> GarbageSpammer<O> {
    /// Creates a spammer that sends `burst` random messages (each up to
    /// `max_len` bytes) at start and per received message, up to `budget`
    /// messages total.
    pub fn new(
        id: NodeId,
        n: usize,
        seed: u64,
        burst: usize,
        max_len: usize,
        budget: usize,
    ) -> Self {
        GarbageSpammer {
            id,
            n,
            rng: StdRng::seed_from_u64(seed),
            burst,
            max_len: max_len.max(1),
            budget,
            _output: PhantomData,
        }
    }

    fn burst_now(&mut self) -> Vec<Envelope> {
        let mut out = Vec::new();
        for _ in 0..self.burst.min(self.budget) {
            let len = self.rng.random_range(0..self.max_len);
            let bytes: Vec<u8> = (0..len).map(|_| self.rng.random()).collect();
            out.push(Envelope::to_all(Bytes::from(bytes)));
            self.budget -= 1;
        }
        out
    }
}

impl<O: Clone + std::fmt::Debug> Protocol for GarbageSpammer<O> {
    type Output = O;
    fn node_id(&self) -> NodeId {
        self.id
    }
    fn n(&self) -> usize {
        self.n
    }
    fn start(&mut self) -> Vec<Envelope> {
        self.burst_now()
    }
    fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
        self.burst_now()
    }
    fn output(&self) -> Option<O> {
        None
    }
    fn is_finished(&self) -> bool {
        self.budget == 0
    }
}

/// Wraps an honest node and corrupts each outgoing payload with probability
/// `corrupt_prob` (one random byte flipped). The messages remain
/// authenticated (the node *is* the corrupted sender) but become
/// semantically malformed, probing decoder robustness end to end.
#[derive(Debug)]
pub struct ByteMutator<P> {
    inner: P,
    rng: StdRng,
    corrupt_prob: f64,
}

impl<P> ByteMutator<P> {
    /// Wraps `inner`; each outgoing envelope is corrupted with probability
    /// `corrupt_prob`.
    pub fn new(inner: P, seed: u64, corrupt_prob: f64) -> ByteMutator<P> {
        ByteMutator { inner, rng: StdRng::seed_from_u64(seed), corrupt_prob }
    }

    fn mangle(&mut self, envs: Vec<Envelope>) -> Vec<Envelope> {
        envs.into_iter()
            .map(|env| {
                if !env.payload.is_empty() && self.rng.random::<f64>() < self.corrupt_prob {
                    let mut bytes = env.payload.to_vec();
                    let idx = self.rng.random_range(0..bytes.len());
                    bytes[idx] ^= 1u8 << self.rng.random_range(0..8);
                    Envelope { to: env.to, payload: Bytes::from(bytes), shard: env.shard }
                } else {
                    env
                }
            })
            .collect()
    }
}

impl<P: Protocol> Protocol for ByteMutator<P> {
    type Output = P::Output;
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn start(&mut self) -> Vec<Envelope> {
        let envs = self.inner.start();
        self.mangle(envs)
    }
    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        let envs = self.inner.on_message(from, payload);
        self.mangle(envs)
    }
    fn output(&self) -> Option<P::Output> {
        None
    }
    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Replays every message it receives back at the whole network, possibly
/// redirecting point-to-point traffic (a cheap equivocation/replay attack).
#[derive(Debug)]
pub struct Replayer<O> {
    id: NodeId,
    n: usize,
    budget: usize,
    _output: PhantomData<O>,
}

impl<O> Replayer<O> {
    /// Creates a replayer that re-broadcasts up to `budget` received
    /// messages.
    pub fn new(id: NodeId, n: usize, budget: usize) -> Replayer<O> {
        Replayer { id, n, budget, _output: PhantomData }
    }
}

impl<O: Clone + std::fmt::Debug> Protocol for Replayer<O> {
    type Output = O;
    fn node_id(&self) -> NodeId {
        self.id
    }
    fn n(&self) -> usize {
        self.n
    }
    fn start(&mut self) -> Vec<Envelope> {
        Vec::new()
    }
    fn on_message(&mut self, _: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if self.budget == 0 {
            return Vec::new();
        }
        self.budget -= 1;
        vec![Envelope::to_all(Bytes::copy_from_slice(payload))]
    }
    fn output(&self) -> Option<O> {
        None
    }
    fn is_finished(&self) -> bool {
        self.budget == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        id: NodeId,
    }
    impl Protocol for Echo {
        type Output = u8;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            3
        }
        fn start(&mut self) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::from_static(b"start"))]
        }
        fn on_message(&mut self, _: NodeId, p: &[u8]) -> Vec<Envelope> {
            vec![Envelope::to_all(Bytes::copy_from_slice(p))]
        }
        fn output(&self) -> Option<u8> {
            Some(1)
        }
    }

    #[test]
    fn crash_is_silent() {
        let mut c: Crash<u8> = Crash::new(NodeId(1), 3);
        assert!(c.start().is_empty());
        assert!(c.on_message(NodeId(0), b"x").is_empty());
        assert_eq!(c.output(), None);
        assert!(c.is_finished());
        assert_eq!(c.node_id(), NodeId(1));
        assert_eq!(c.n(), 3);
    }

    #[test]
    fn silent_after_budget() {
        let mut s = SilentAfter::new(Echo { id: NodeId(0) }, 2);
        assert_eq!(s.start().len(), 1);
        assert_eq!(s.on_message(NodeId(1), b"a").len(), 1);
        assert_eq!(s.on_message(NodeId(1), b"b").len(), 1);
        assert!(s.is_finished() && s.on_message(NodeId(1), b"c").is_empty());
        assert_eq!(s.output(), None);
    }

    #[test]
    fn garbage_spammer_respects_budget_and_determinism() {
        let mut g1: GarbageSpammer<u8> = GarbageSpammer::new(NodeId(0), 3, 7, 2, 64, 3);
        let mut g2: GarbageSpammer<u8> = GarbageSpammer::new(NodeId(0), 3, 7, 2, 64, 3);
        let b1 = g1.start();
        let b2 = g2.start();
        assert_eq!(b1.len(), 2);
        assert_eq!(b1[0].payload, b2[0].payload, "deterministic per seed");
        assert_eq!(g1.on_message(NodeId(1), b"x").len(), 1, "budget exhausts");
        assert!(g1.is_finished());
        assert!(g1.on_message(NodeId(1), b"x").is_empty());
    }

    #[test]
    fn byte_mutator_flips_exactly_one_bit_when_corrupting() {
        let mut m = ByteMutator::new(Echo { id: NodeId(0) }, 1, 1.0);
        let out = m.on_message(NodeId(1), b"hello-world");
        assert_eq!(out.len(), 1);
        let corrupted = &out[0].payload;
        assert_eq!(corrupted.len(), 11);
        let diff: u32 =
            corrupted.iter().zip(b"hello-world").map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1);
        // With probability 0 nothing changes.
        let mut m = ByteMutator::new(Echo { id: NodeId(0) }, 1, 0.0);
        let out = m.on_message(NodeId(1), b"hello-world");
        assert_eq!(&out[0].payload[..], b"hello-world");
    }

    #[test]
    fn replayer_rebroadcasts_until_budget() {
        let mut r: Replayer<u8> = Replayer::new(NodeId(2), 3, 1);
        assert!(r.start().is_empty());
        let out = r.on_message(NodeId(0), b"msg");
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0].payload[..], b"msg");
        assert!(r.on_message(NodeId(0), b"msg").is_empty());
    }
}
