//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: an immutable, cheaply cloneable,
//! contiguous byte buffer. Semantics match `bytes::Bytes` for this subset.
//! Like the real crate, `clone()`, `slice()`, and `From<Vec<u8>>` are
//! zero-copy: a `Bytes` is a `(refcounted buffer, start, end)` view, so the
//! receive hot path can share one frame-body allocation among every entry
//! sliced out of it.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
///
/// Internally a `(buffer, start, end)` view over a shared allocation:
/// cloning and sub-slicing bump a refcount instead of copying bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied here; the real crate
    /// borrows, but nothing in this workspace observes the difference).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying the given slice.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a slice view of the whole buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a new `Bytes` for the given sub-range **without copying**:
    /// the result shares this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end, "slice range reversed");
        assert!(range.end <= self.len(), "slice range out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

/// Append-style write methods (big-endian, as in the real crate).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in big-endian order.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` in big-endian order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xdead_beef);
        buf.put_u16(0x0102);
        buf.put_slice(b"xy");
        buf.extend_from_slice(b"z");
        assert_eq!(buf.len(), 9);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..4], &[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(&frozen[4..6], &[1, 2]);
        assert_eq!(&frozen[6..], b"xyz");
    }

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[..], &[1u8, 2, 3][..]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from_static(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert!(!b.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        // The sub-view shares the parent allocation (no copy).
        assert!(Arc::ptr_eq(&b.data, &mid.data));
        // Slicing a slice stays within the view's own coordinates.
        let inner = mid.slice(1..2);
        assert_eq!(&inner[..], &[3]);
        assert!(Arc::ptr_eq(&b.data, &inner.data));
        // Empty and full ranges are fine.
        assert!(b.slice(3..3).is_empty());
        assert_eq!(b.slice(0..b.len()), b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rejects_out_of_bounds() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\n");
        assert_eq!(format!("{b:?}"), "b\"a\\n\"");
    }
}
