//! Continuous probability distributions.
//!
//! Every law the paper's analysis touches (§IV-D, Figs. 4–5), implemented
//! from scratch: density, distribution function, quantile, mean, and
//! seeded sampling. Construction validates parameters and returns
//! [`DistError`] on nonsense ([C-VALIDATE]).
//!
//! [C-VALIDATE]: https://rust-lang.github.io/api-guidelines/dependability.html

use std::error::Error;
use std::fmt;

use rand::Rng;

use crate::special::{erf, gamma, inv_std_normal_cdf, ln_gamma, reg_lower_gamma};

/// Invalid distribution parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistError {
    param: &'static str,
    value: f64,
}

impl DistError {
    fn new(param: &'static str, value: f64) -> DistError {
        DistError { param, value }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter {} = {}", self.param, self.value)
    }
}

impl Error for DistError {}

fn require_positive(param: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(DistError::new(param, value))
    }
}

fn require_finite(param: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(DistError::new(param, value))
    }
}

/// A continuous probability distribution.
///
/// Implementations guarantee: `cdf` is monotone from 0 to 1, `quantile`
/// inverts it (up to numeric tolerance), and `sample` draws values whose
/// law matches `cdf` (checked by Kolmogorov–Smirnov tests in this crate).
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;
    /// The `p`-quantile (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;
    /// Expected value (NaN if undefined for the parameters).
    fn mean(&self) -> f64;
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64
    where
        Self: Sized;
}

fn check_p(p: f64) {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1), got {p}");
}

/// Draws a standard normal via Box–Muller.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if `mu` is not finite or `sigma ≤ 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Normal, DistError> {
        Ok(Normal { mu: require_finite("mu", mu)?, sigma: require_positive("sigma", sigma)? })
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (std::f64::consts::TAU).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf((x - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.mu + self.sigma * inv_std_normal_cdf(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * std_normal(rng)
    }
}

/// Lognormal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lognormal {
    norm: Normal,
}

impl Lognormal {
    /// Creates the law of `exp(N(mu, sigma²))`.
    ///
    /// # Errors
    ///
    /// See [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Lognormal, DistError> {
        Ok(Lognormal { norm: Normal::new(mu, sigma)? })
    }
}

impl ContinuousDist for Lognormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.norm.pdf(x.ln()) / x
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.norm.cdf(x.ln())
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.norm.quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        (self.norm.mu + self.norm.sigma * self.norm.sigma / 2.0).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates `Gamma(shape, scale)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless both parameters are finite and
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, DistError> {
        Ok(Gamma {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang sampling for shape ≥ 1.
    fn sample_shape_ge1<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = std_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl ContinuousDist for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let ln_pdf = (k - 1.0) * x.ln() - x / self.scale - ln_gamma(k) - k * self.scale.ln();
        ln_pdf.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.shape, x / self.scale)
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        // Bisection on the CDF: robust and plenty fast for our use.
        let mut lo = 0.0;
        let mut hi = self.mean() + 1.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e300 {
                return hi;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng) * self.scale
        } else {
            // Boost: Gamma(k) = Gamma(k + 1) · U^{1/k}.
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            Self::sample_shape_ge1(self.shape + 1.0, rng) * u.powf(1.0 / self.shape) * self.scale
        }
    }
}

/// Pareto distribution with scale `x_m` (minimum) and shape `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    x_m: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates `Pareto(x_m, alpha)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless both parameters are finite and
    /// positive.
    pub fn new(x_m: f64, alpha: f64) -> Result<Pareto, DistError> {
        Ok(Pareto { x_m: require_positive("x_m", x_m)?, alpha: require_positive("alpha", alpha)? })
    }

    /// Tail (shape) parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ContinuousDist for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.x_m {
            return 0.0;
        }
        self.alpha * self.x_m.powf(self.alpha) / x.powf(self.alpha + 1.0)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_m {
            return 0.0;
        }
        1.0 - (self.x_m / x).powf(self.alpha)
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.x_m / (1.0 - p).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::NAN
        } else {
            self.alpha * self.x_m / (self.alpha - 1.0)
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>();
        self.quantile((1.0 - u).clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON))
    }
}

/// Gumbel (type-I extreme value) distribution: the law of maxima/ranges of
/// thin-tailed samples (§IV-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gumbel {
    loc: f64,
    scale: f64,
}

impl Gumbel {
    /// Creates `Gumbel(loc, scale)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if `loc` is not finite or `scale ≤ 0`.
    pub fn new(loc: f64, scale: f64) -> Result<Gumbel, DistError> {
        Ok(Gumbel { loc: require_finite("loc", loc)?, scale: require_positive("scale", scale)? })
    }

    /// Location parameter `µ`.
    pub fn loc(&self) -> f64 {
        self.loc
    }

    /// Scale parameter `β`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Gumbel {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.loc) / self.scale;
        ((-z - (-z).exp()).exp()) / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.loc) / self.scale).exp()).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.loc - self.scale * (-p.ln()).ln()
    }

    fn mean(&self) -> f64 {
        self.loc + self.scale * crate::special::EULER_GAMMA
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        self.quantile(u)
    }
}

/// Fréchet (type-II extreme value) distribution: the law of maxima of
/// fat-tailed samples; the paper fits `Fréchet(α = 4.41, s = 29.3)` to
/// the BTC price range (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Frechet {
    loc: f64,
    scale: f64,
    alpha: f64,
}

impl Frechet {
    /// Creates `Fréchet(loc, scale, alpha)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `loc` is finite and `scale`, `alpha`
    /// are finite and positive.
    pub fn new(loc: f64, scale: f64, alpha: f64) -> Result<Frechet, DistError> {
        Ok(Frechet {
            loc: require_finite("loc", loc)?,
            scale: require_positive("scale", scale)?,
            alpha: require_positive("alpha", alpha)?,
        })
    }

    /// Tail (shape) parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Frechet {
    fn pdf(&self, x: f64) -> f64 {
        if x <= self.loc {
            return 0.0;
        }
        let z = (x - self.loc) / self.scale;
        (self.alpha / self.scale) * z.powf(-1.0 - self.alpha) * (-z.powf(-self.alpha)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.loc {
            return 0.0;
        }
        let z = (x - self.loc) / self.scale;
        (-z.powf(-self.alpha)).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.loc + self.scale * (-p.ln()).powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::NAN
        } else {
            self.loc + self.scale * gamma(1.0 - 1.0 / self.alpha)
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        self.quantile(u)
    }
}

/// Log-gamma distribution: the law of `exp(G)` for `G ~ Gamma` — the
/// fat-tailed input model the paper infers for BTC prices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogGamma {
    gamma: Gamma,
}

impl LogGamma {
    /// Creates the law of `exp(Gamma(shape, scale))`.
    ///
    /// # Errors
    ///
    /// See [`Gamma::new`].
    pub fn new(shape: f64, scale: f64) -> Result<LogGamma, DistError> {
        Ok(LogGamma { gamma: Gamma::new(shape, scale)? })
    }
}

impl ContinuousDist for LogGamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 1.0 {
            return 0.0;
        }
        self.gamma.pdf(x.ln()) / x
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 1.0 {
            return 0.0;
        }
        self.gamma.cdf(x.ln())
    }

    fn quantile(&self, p: f64) -> f64 {
        check_p(p);
        self.gamma.quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        // E[exp(G)] = (1 - scale)^{-shape} for scale < 1, else infinite.
        if self.gamma.scale() < 1.0 {
            (1.0 - self.gamma.scale()).powf(-self.gamma.shape())
        } else {
            f64::INFINITY
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.gamma.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    fn sample_n<D: ContinuousDist>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    /// Quantile must invert the CDF for every distribution.
    fn check_quantile_inverts<D: ContinuousDist>(d: &D, tol: f64) {
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = d.quantile(p);
            close(d.cdf(x), p, tol);
        }
    }

    /// Empirical mean of samples must approach the analytic mean.
    fn check_sample_mean<D: ContinuousDist>(d: &D, tol: f64, seed: u64) {
        let samples = sample_n(d, 20_000, seed);
        let s = Summary::of(&samples);
        close(s.mean, d.mean(), tol);
    }

    #[test]
    fn normal_quantile_cdf_mean() {
        let d = Normal::new(5.0, 2.0).unwrap();
        check_quantile_inverts(&d, 1e-6);
        check_sample_mean(&d, 0.05, 1);
        close(d.pdf(5.0), 1.0 / (2.0 * std::f64::consts::TAU.sqrt()), 1e-12);
        assert_eq!(d.sigma(), 2.0);
    }

    #[test]
    fn lognormal_quantile_cdf_mean() {
        let d = Lognormal::new(0.5, 0.4).unwrap();
        check_quantile_inverts(&d, 1e-6);
        check_sample_mean(&d, 0.05, 2);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.pdf(0.0), 0.0);
    }

    #[test]
    fn gamma_quantile_cdf_mean() {
        // The paper's IoU model: Gamma(shape 30.77, scale 0.18)? That is
        // the *error* model of §VI-B; exercise similar parameters.
        let d = Gamma::new(30.77, 0.18).unwrap();
        check_quantile_inverts(&d, 1e-9);
        check_sample_mean(&d, 0.05, 3);
        close(d.mean(), 5.5386, 1e-3);
        // Small-shape branch.
        let d = Gamma::new(0.5, 1.0).unwrap();
        check_quantile_inverts(&d, 1e-9);
        check_sample_mean(&d, 0.05, 4);
    }

    #[test]
    fn pareto_quantile_cdf_mean() {
        let d = Pareto::new(1.0, 3.0).unwrap();
        check_quantile_inverts(&d, 1e-12);
        check_sample_mean(&d, 0.05, 5);
        close(d.mean(), 1.5, 1e-12);
        assert!(Pareto::new(1.0, 0.5).unwrap().mean().is_nan());
    }

    #[test]
    fn gumbel_quantile_cdf_mean() {
        let d = Gumbel::new(3.0, 2.0).unwrap();
        check_quantile_inverts(&d, 1e-12);
        check_sample_mean(&d, 0.08, 6);
        close(d.mean(), 3.0 + 2.0 * crate::special::EULER_GAMMA, 1e-12);
    }

    #[test]
    fn frechet_quantile_cdf_mean() {
        // The paper's Fig. 4 fit: α = 4.41, scale = 29.3.
        let d = Frechet::new(0.0, 29.3, 4.41).unwrap();
        check_quantile_inverts(&d, 1e-12);
        check_sample_mean(&d, 1.0, 7);
        // Mean = s·Γ(1 − 1/α) ≈ 29.3 · Γ(0.773).
        close(d.mean(), 29.3 * gamma(1.0 - 1.0 / 4.41), 1e-9);
        assert!(d.mean() > 29.3, "Fréchet mean above scale");
    }

    #[test]
    fn loggamma_quantile_cdf_sample() {
        let d = LogGamma::new(2.0, 0.3).unwrap();
        check_quantile_inverts(&d, 1e-9);
        check_sample_mean(&d, 0.05, 8);
        close(d.mean(), (1.0f64 - 0.3).powf(-2.0), 1e-12);
        assert_eq!(d.cdf(0.5), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Gumbel::new(0.0, -2.0).is_err());
        assert!(Frechet::new(0.0, 1.0, f64::INFINITY).is_err());
        let err = Normal::new(0.0, -1.0).unwrap_err();
        assert!(err.to_string().contains("sigma"));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Gamma::new(2.0, 1.5).unwrap();
        assert_eq!(sample_n(&d, 10, 42), sample_n(&d, 10, 42));
        assert_ne!(sample_n(&d, 10, 42), sample_n(&d, 10, 43));
    }

    /// One-sample KS test of each sampler against its own CDF: the
    /// statistic for 2 000 samples should be well below 0.04 (the 1%
    /// critical value is ≈ 0.0364).
    #[test]
    fn samplers_match_their_cdfs() {
        fn ks_self<D: ContinuousDist>(d: &D, seed: u64) -> f64 {
            let mut xs = sample_n(d, 2_000, seed);
            xs.sort_by(f64::total_cmp);
            crate::ks::ks_statistic_sorted(&xs, |x| d.cdf(x))
        }
        assert!(ks_self(&Normal::new(0.0, 1.0).unwrap(), 11) < 0.04);
        assert!(ks_self(&Lognormal::new(0.0, 0.5).unwrap(), 12) < 0.04);
        assert!(ks_self(&Gamma::new(3.0, 2.0).unwrap(), 13) < 0.04);
        assert!(ks_self(&Gamma::new(0.7, 1.0).unwrap(), 14) < 0.04);
        assert!(ks_self(&Pareto::new(2.0, 2.5).unwrap(), 15) < 0.04);
        assert!(ks_self(&Gumbel::new(1.0, 3.0).unwrap(), 16) < 0.04);
        assert!(ks_self(&Frechet::new(0.0, 29.3, 4.41).unwrap(), 17) < 0.04);
        assert!(ks_self(&LogGamma::new(2.0, 0.2).unwrap(), 18) < 0.04);
    }
}
