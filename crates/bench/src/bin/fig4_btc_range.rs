#![forbid(unsafe_code)]
//! Regenerates **Fig. 4**: histogram of the per-minute BTC price range δ
//! with Fréchet and Gumbel fits (Fréchet must fit better), plus the
//! derived `Δ` for λ = 30 bits (§VI-A's `Δ = 2000$`).
//!
//! `cargo run --release -p delphi-bench --bin fig4_btc_range`

use delphi_bench::TextTable;
use delphi_stats::describe::Summary;
use delphi_stats::dist::ContinuousDist;
use delphi_stats::{evt, fit, ks, Histogram};
use delphi_workloads::{BtcFeed, BtcFeedConfig};

fn main() {
    // Two weeks at one reading per minute, as in the paper.
    let minutes = 14 * 24 * 60;
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), 0xF164);
    let ranges = feed.range_series(minutes);
    let summary = Summary::of(&ranges);

    println!("== Fig. 4: BTC price range histogram ({minutes} minutes, 10 exchanges) ==\n");
    let mut hist = Histogram::new(0.0, 70.0, 28).expect("histogram range");
    hist.extend(&ranges);
    println!("{}", hist.to_ascii(44));
    println!("(overflow beyond 70$: {} minutes)\n", hist.overflow());

    let frechet = fit::frechet_log_moments(&ranges).expect("Fréchet fit");
    let gumbel = fit::gumbel_moments(&ranges).expect("Gumbel fit");
    let d_frechet = ks::ks_statistic(&ranges, |x| frechet.cdf(x));
    let d_gumbel = ks::ks_statistic(&ranges, |x| gumbel.cdf(x));

    let mut table = TextTable::new(&["fit", "params", "KS distance"]);
    table.row(&[
        "Frechet".into(),
        format!("alpha={:.2} scale={:.1}", frechet.alpha(), frechet.scale()),
        format!("{d_frechet:.4}"),
    ]);
    table.row(&[
        "Gumbel".into(),
        format!("loc={:.1} scale={:.1}", gumbel.loc(), gumbel.scale()),
        format!("{d_gumbel:.4}"),
    ]);
    println!("{}", table.render());

    let below_100 = ranges.iter().filter(|&&r| r < 100.0).count() as f64 / ranges.len() as f64;
    let below_300 = ranges.iter().filter(|&&r| r < 300.0).count() as f64 / ranges.len() as f64;
    println!(
        "mean δ = {:.1}$   P(δ < 100$) = {:.2}%   P(δ < 300$) = {:.2}%",
        summary.mean,
        below_100 * 100.0,
        below_300 * 100.0
    );

    let delta30 = evt::frechet_tail_bound(&frechet, 30);
    println!("derived Δ (λ = 30 bits): {delta30:.0}$   [paper: 2000$]");

    println!("\nshape checks:");
    println!("  Fréchet better than Gumbel: {}", d_frechet < d_gumbel);
    println!(
        "  α near 4.41: {} (measured {:.2})",
        (frechet.alpha() - 4.41).abs() < 0.6,
        frechet.alpha()
    );
    println!("  Δ within [1000, 4000]$: {}", (1000.0..4000.0).contains(&delta30));
    assert!(d_frechet < d_gumbel, "Fig. 4 shape: Fréchet must beat Gumbel");
}
