//! End-to-end protocol benchmarks (wall-clock cost of simulating one
//! agreement instance per protocol — the basis of the Fig. 6 sweeps).

use criterion::{criterion_group, criterion_main, Criterion};

use delphi_bench::{oracle_config, run_aad, run_acs, run_delphi, spread_inputs};
use delphi_sim::Topology;

fn bench_protocols(c: &mut Criterion) {
    let n = 10;
    let inputs = spread_inputs(n, 40_000.0, 20.0);
    let cfg = oracle_config(n, 10.0);

    let mut group = c.benchmark_group("end_to_end_n10");
    group.sample_size(10);
    group.bench_function("delphi", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_delphi(&cfg, Topology::lan(n), &inputs, seed)
        })
    });
    group.bench_function("fin_acs", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_acs(n, Topology::lan(n), &inputs, seed)
        })
    });
    group.bench_function("abraham_et_al", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_aad(n, Topology::lan(n), &inputs, 10, seed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
