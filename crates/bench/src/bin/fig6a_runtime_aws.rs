#![forbid(unsafe_code)]
//! Regenerates **Fig. 6a**: runtime vs `n` on the geo-distributed AWS
//! testbed — Delphi (δ = 20$ and δ = 180$) vs FIN vs Abraham et al.
//!
//! Configuration per the figure caption: `ρ0 = 10$, Δ = 2000$, ε = 2$`.
//! Expected shape: Delphi is the *slowest* at n = 16 (round count ×
//! geo-RTT dominates) but scales far better, beating FIN by ~3× and
//! Abraham et al. by ~6× at n = 160.
//!
//! `cargo run --release -p delphi-bench --bin fig6a_runtime_aws [--quick]`
//!
//! With `--cluster <config.toml>`, the simulated sweep is replaced by one
//! *real* deployment-style run: one OS process per `[[node]]` entry of
//! the cluster file, talking over real sockets (build the node binary
//! first: `cargo build --release -p delphi-bench --bin delphi-node`).

use delphi_bench::cluster::{cluster_flag, run_cluster, summarize, ClusterRunSpec, LOCAL_EPSILON};
use delphi_bench::{
    emit_bench_json, oracle_config, quick_mode, run_aad, run_acs, run_delphi, spread_inputs,
    TextTable,
};
use delphi_sim::Topology;

fn run_cluster_mode(config: std::path::PathBuf) {
    println!("== Fig. 6a (cluster mode): runtime over real sockets and processes ==\n");
    let spec = ClusterRunSpec::new(config);
    let outcome = match run_cluster(&spec) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fig6a: cluster run failed: {e}");
            std::process::exit(1);
        }
    };
    let mut table = TextTable::new(&["node", "runtime ms", "output"]);
    for r in &outcome.reports {
        table.row(&[r.id.to_string(), format!("{:.0}", r.elapsed_ms), format!("{:.4}", r.output)]);
    }
    println!("{}", table.render());
    println!("{}", summarize(&outcome, LOCAL_EPSILON));
    assert!(outcome.converged(LOCAL_EPSILON), "cluster outputs disagree");
}

fn main() {
    if let Some(config) = cluster_flag() {
        run_cluster_mode(config);
        return;
    }
    let ns: &[usize] = if quick_mode() { &[16, 64] } else { &[16, 64, 112, 160] };
    let center = 40_000.0;
    println!("== Fig. 6a: runtime vs n on AWS (ms, simulated geo testbed) ==\n");

    let mut table =
        TextTable::new(&["n", "Delphi d=20$", "Delphi d=180$", "FIN", "Abraham et al."]);
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for &n in ns {
        let cfg = oracle_config(n, 10.0);
        let d20 = run_delphi(&cfg, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 6001);
        let d180 = run_delphi(&cfg, Topology::aws_geo(n), &spread_inputs(n, center, 180.0), 6002);
        let fin = run_acs(n, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 6003);
        // Abraham et al. rounds: log2(Δ/ε) = 10.
        let aad = run_aad(n, Topology::aws_geo(n), &spread_inputs(n, center, 20.0), 10, 6004);
        table.row(&[
            n.to_string(),
            format!("{:.0}", d20.runtime_ms),
            format!("{:.0}", d180.runtime_ms),
            format!("{:.0}", fin.runtime_ms),
            format!("{:.0}", aad.runtime_ms),
        ]);
        rows.push([d20.runtime_ms, d180.runtime_ms, fin.runtime_ms, aad.runtime_ms]);
        // Deterministic simulated latencies, emitted in the BENCH_JSON
        // convention (ns) for the fig regression gate.
        for (label, point) in
            [("delphi_d20", &d20), ("delphi_d180", &d180), ("fin", &fin), ("aad", &aad)]
        {
            emit_bench_json(&format!("fig6a/{label}_n{n}_runtime"), point.runtime_ms * 1e6);
        }
        eprintln!("  n={n} done");
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());

    let first = rows.first().expect("at least one n");
    let last = rows.last().expect("at least one n");
    println!("shape checks:");
    println!(
        "  small n = {}: Delphi slower than FIN (paper: high round complexity × RTT): {}",
        ns[0],
        first[0] > first[2]
    );
    println!(
        "  large n = {}: Delphi faster than FIN: {} ({:.1}x)",
        ns[ns.len() - 1],
        last[0] < last[2],
        last[2] / last[0]
    );
    println!(
        "  large n: Delphi faster than Abraham et al.: {} ({:.1}x)",
        last[0] < last[3],
        last[3] / last[0]
    );
    println!(
        "  Delphi δ-insensitive on AWS (within 35%): {}",
        (last[1] / last[0] - 1.0).abs() < 0.35
    );
}
