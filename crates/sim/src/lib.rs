//! Deterministic discrete-event network simulator.
//!
//! This crate is the reproduction's stand-in for the paper's two testbeds
//! (§VI-C): the geo-distributed AWS deployment and the Raspberry-Pi CPS
//! cluster. It drives any set of [`Protocol`](delphi_primitives::Protocol)
//! state machines over a simulated asynchronous network and reports
//!
//! - **latency** in simulated time, under a configurable latency model
//!   (per-pair geo matrices with jitter for "AWS", bandwidth-limited shared
//!   links for "CPS"), and
//! - **bandwidth** as the exact number of bytes the protocols put on the
//!   wire (payload plus the same framing overhead `delphi-net` adds).
//!
//! Runs are fully deterministic given a seed, so every experiment and every
//! failing test can be replayed. Multi-asset scenarios scale out two ways:
//! [`run_sharded`] executes independent per-asset simulations across worker
//! threads, and [`Mux`](delphi_primitives::Mux) nodes multiplex all assets
//! over one simulated mesh with batched envelopes ([`BatchSavings`]
//! quantifies what that batching saves).
//!
//! # Model
//!
//! - Message delivery time = sender egress serialization (bytes / egress
//!   bandwidth, queued per sender) + sampled one-way latency (+ optional
//!   per-pair FIFO clamping).
//! - Receiver CPU is a single server queue: each message costs
//!   `per_message + per_byte·len` processing time before the protocol sees
//!   it (the t2.micro vs Raspberry-Pi contrast in Fig. 6 comes from this
//!   knob together with bandwidth).
//! - The adversary owns scheduling within these bounds: latency models with
//!   jitter reorder arbitrarily, and [`adversary`] provides byte-level
//!   Byzantine node behaviours (crash, garbage, mutation, replay).
//!   Messages are never dropped, matching the paper's network assumption.
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use delphi_primitives::{Envelope, NodeId, Protocol};
//! use delphi_sim::{Simulation, Topology};
//!
//! // A one-shot gossip: every node broadcasts "hi" and outputs the count
//! // of greetings received once it has heard from everyone else.
//! struct Gossip { id: NodeId, n: usize, heard: usize }
//! impl Protocol for Gossip {
//!     type Output = usize;
//!     fn node_id(&self) -> NodeId { self.id }
//!     fn n(&self) -> usize { self.n }
//!     fn start(&mut self) -> Vec<Envelope> {
//!         vec![Envelope::to_all(Bytes::from_static(b"hi"))]
//!     }
//!     fn on_message(&mut self, _: NodeId, m: &[u8]) -> Vec<Envelope> {
//!         if m == b"hi" { self.heard += 1; }
//!         Vec::new()
//!     }
//!     fn output(&self) -> Option<usize> {
//!         (self.heard == self.n - 1).then_some(self.heard)
//!     }
//! }
//!
//! let n = 4;
//! let nodes = NodeId::all(n)
//!     .map(|id| Box::new(Gossip { id, n, heard: 0 }) as Box<dyn Protocol<Output = usize>>)
//!     .collect();
//! let report = Simulation::new(Topology::lan(n)).seed(7).run(nodes);
//! assert!(report.all_honest_finished());
//! assert_eq!(report.outputs[0], Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod engine;
mod latency;
mod metrics;
mod shard;
mod topology;

pub use engine::{RunReport, Simulation, StopReason};
pub use latency::{Jitter, LatencyMatrix};
pub use metrics::{Metrics, NodeMetrics};
pub use shard::{run_sharded, BatchSavings, EpochThroughput, SimJob};
pub use topology::{CostModel, Topology, WIRE_OVERHEAD_BYTES};
