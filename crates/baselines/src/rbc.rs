//! Bracha Reliable Broadcast.
//!
//! The primitive behind both baselines: a designated broadcaster sends a
//! payload; every correct node eventually delivers the *same* payload
//! (agreement + totality), and if the broadcaster is correct it is the
//! payload it sent (validity). The classic `SEND → ECHO → READY` pattern:
//!
//! - on the broadcaster's `SEND`: echo it (once);
//! - on `n − t` `ECHO`s for a payload: send `READY` (once);
//! - on `t + 1` `READY`s: send `READY` (amplification);
//! - on `2t + 1` `READY`s: deliver.
//!
//! Cost: `O(n²)` messages each carrying the payload — this is exactly the
//! §III-A argument for why RBC-based approximate agreement pays `O(n³)`
//! bits per round, the overhead Delphi exists to avoid.
//!
//! [`RbcInstance`] is the embeddable state machine ([`crate::acs`] runs
//! `n` of them, [`crate::aad`] runs `n` per round); [`RbcNode`] wraps a
//! single instance as a standalone [`Protocol`] for tests and benches.

use bytes::Bytes;
use delphi_crypto::{sha256, DIGEST_LEN};
use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Envelope, NodeBitSet, NodeId, Protocol};

/// Maximum payload accepted in an RBC message (Byzantine senders control
/// the field).
pub const MAX_RBC_PAYLOAD: usize = 64 * 1024;

/// Maximum distinct payload digests tracked per instance per phase.
const MAX_TRACKED_DIGESTS: usize = 4;

/// An RBC protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbcMsg {
    /// Broadcaster's initial payload.
    Send(Bytes),
    /// First-phase endorsement.
    Echo(Bytes),
    /// Second-phase commitment.
    Ready(Bytes),
}

impl RbcMsg {
    /// The carried payload.
    pub fn payload(&self) -> &Bytes {
        match self {
            RbcMsg::Send(p) | RbcMsg::Echo(p) | RbcMsg::Ready(p) => p,
        }
    }
}

impl Encode for RbcMsg {
    fn encode(&self, w: &mut Writer) {
        let (tag, payload) = match self {
            RbcMsg::Send(p) => (0u8, p),
            RbcMsg::Echo(p) => (1, p),
            RbcMsg::Ready(p) => (2, p),
        };
        w.put_raw_u8(tag);
        w.put_bytes(payload);
    }
}

impl Decode for RbcMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_raw_u8()?;
        let payload = r.get_bytes()?;
        if payload.len() > MAX_RBC_PAYLOAD {
            return Err(WireError::LengthOutOfBounds);
        }
        let payload = Bytes::copy_from_slice(payload);
        match tag {
            0 => Ok(RbcMsg::Send(payload)),
            1 => Ok(RbcMsg::Echo(payload)),
            2 => Ok(RbcMsg::Ready(payload)),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }
}

/// Messages an instance asks its owner to broadcast.
pub type RbcAction = RbcMsg;

type Digest = [u8; DIGEST_LEN];

#[derive(Debug, Clone)]
struct Tally {
    digest: Digest,
    payload: Bytes,
    senders: NodeBitSet,
}

/// One node's state for one reliable broadcast.
#[derive(Debug, Clone)]
pub struct RbcInstance {
    me: NodeId,
    n: usize,
    t: usize,
    broadcaster: NodeId,
    echoes: Vec<Tally>,
    readies: Vec<Tally>,
    /// Senders that have already echoed / readied (one each per node).
    echoed: NodeBitSet,
    readied: NodeBitSet,
    sent_echo: bool,
    sent_ready: bool,
    delivered: Option<Bytes>,
}

impl RbcInstance {
    /// Creates node `me`'s state for `broadcaster`'s RBC.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1` or an id is out of range.
    pub fn new(me: NodeId, n: usize, t: usize, broadcaster: NodeId) -> RbcInstance {
        assert!(n > 3 * t, "Bracha RBC requires n >= 3t + 1");
        assert!(me.index() < n && broadcaster.index() < n, "id out of range");
        RbcInstance {
            me,
            n,
            t,
            broadcaster,
            echoes: Vec::new(),
            readies: Vec::new(),
            echoed: NodeBitSet::new(n),
            readied: NodeBitSet::new(n),
            sent_echo: false,
            sent_ready: false,
            delivered: None,
        }
    }

    /// The broadcaster this instance listens to.
    pub fn broadcaster(&self) -> NodeId {
        self.broadcaster
    }

    /// The delivered payload, once any.
    pub fn delivered(&self) -> Option<&Bytes> {
        self.delivered.as_ref()
    }

    /// Starts the broadcast (only meaningful at the broadcaster).
    /// Returns the messages to broadcast, including the `SEND`.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-broadcaster instance.
    pub fn broadcast(&mut self, payload: Bytes) -> Vec<RbcAction> {
        assert_eq!(self.me, self.broadcaster, "only the broadcaster starts an RBC");
        let mut actions = vec![RbcMsg::Send(payload.clone())];
        // Process our own SEND locally.
        actions.extend(self.on_message(self.me, &RbcMsg::Send(payload)));
        actions
    }

    /// Handles a message from `from`, returning messages to broadcast.
    pub fn on_message(&mut self, from: NodeId, msg: &RbcMsg) -> Vec<RbcAction> {
        let mut actions = Vec::new();
        if from.index() >= self.n || msg.payload().len() > MAX_RBC_PAYLOAD {
            return actions;
        }
        match msg {
            RbcMsg::Send(payload) => {
                // Only the designated broadcaster's SEND counts; echo once.
                if from == self.broadcaster && !self.sent_echo {
                    self.sent_echo = true;
                    self.record_echo(self.me, payload.clone());
                    actions.push(RbcMsg::Echo(payload.clone()));
                }
            }
            RbcMsg::Echo(payload) => {
                self.record_echo(from, payload.clone());
            }
            RbcMsg::Ready(payload) => {
                self.record_ready(from, payload.clone());
            }
        }
        self.progress(&mut actions);
        actions
    }

    fn record_echo(&mut self, from: NodeId, payload: Bytes) {
        if !self.echoed.insert(from) {
            return; // one ECHO per sender
        }
        Self::tally(&mut self.echoes, from, payload, self.n);
    }

    fn record_ready(&mut self, from: NodeId, payload: Bytes) {
        if !self.readied.insert(from) {
            return; // one READY per sender
        }
        Self::tally(&mut self.readies, from, payload, self.n);
    }

    fn tally(tallies: &mut Vec<Tally>, from: NodeId, payload: Bytes, n: usize) {
        let digest = sha256(&payload);
        if let Some(t) = tallies.iter_mut().find(|t| t.digest == digest) {
            t.senders.insert(from);
            return;
        }
        if tallies.len() >= MAX_TRACKED_DIGESTS {
            return; // Byzantine digest flood: ignore beyond the cap
        }
        let mut senders = NodeBitSet::new(n);
        senders.insert(from);
        tallies.push(Tally { digest, payload, senders });
    }

    fn progress(&mut self, actions: &mut Vec<RbcAction>) {
        // READY on n − t ECHOs.
        if !self.sent_ready {
            if let Some(t) = self.echoes.iter().find(|t| t.senders.len() >= self.n - self.t) {
                let payload = t.payload.clone();
                self.sent_ready = true;
                self.record_ready(self.me, payload.clone());
                actions.push(RbcMsg::Ready(payload));
            }
        }
        // READY amplification on t + 1 READYs.
        if !self.sent_ready {
            if let Some(t) = self.readies.iter().find(|t| t.senders.len() > self.t) {
                let payload = t.payload.clone();
                self.sent_ready = true;
                self.record_ready(self.me, payload.clone());
                actions.push(RbcMsg::Ready(payload));
            }
        }
        // Deliver on 2t + 1 READYs.
        if self.delivered.is_none() {
            if let Some(t) = self.readies.iter().find(|t| t.senders.len() > 2 * self.t) {
                self.delivered = Some(t.payload.clone());
            }
        }
    }
}

/// A standalone reliable-broadcast node ([`Protocol`] wrapper around one
/// [`RbcInstance`]).
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use delphi_baselines::RbcNode;
/// use delphi_primitives::{NodeId, Protocol};
/// use delphi_sim::{Simulation, Topology};
///
/// let n = 4;
/// let nodes = NodeId::all(n)
///     .map(|id| {
///         let payload = (id == NodeId(0)).then(|| Bytes::from_static(b"block"));
///         RbcNode::new(id, n, 1, NodeId(0), payload).boxed()
///     })
///     .collect();
/// let report = Simulation::new(Topology::lan(n)).seed(2).run(nodes);
/// for out in report.honest_outputs() {
///     assert_eq!(&out[..], b"block");
/// }
/// ```
#[derive(Debug)]
pub struct RbcNode {
    instance: RbcInstance,
    to_send: Option<Bytes>,
}

impl RbcNode {
    /// Creates a node for `broadcaster`'s RBC; `payload` must be `Some` at
    /// the broadcaster and `None` elsewhere.
    ///
    /// # Panics
    ///
    /// Panics on id/threshold violations (see [`RbcInstance::new`]) or if
    /// `payload` presence does not match the role.
    pub fn new(
        me: NodeId,
        n: usize,
        t: usize,
        broadcaster: NodeId,
        payload: Option<Bytes>,
    ) -> RbcNode {
        assert_eq!(payload.is_some(), me == broadcaster, "payload iff broadcaster");
        RbcNode { instance: RbcInstance::new(me, n, t, broadcaster), to_send: payload }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Bytes>> {
        Box::new(self)
    }

    fn envelopes(actions: Vec<RbcAction>) -> Vec<Envelope> {
        actions.into_iter().map(|m| Envelope::to_all(m.to_bytes())).collect()
    }
}

impl Protocol for RbcNode {
    type Output = Bytes;

    fn node_id(&self) -> NodeId {
        self.instance.me
    }

    fn n(&self) -> usize {
        self.instance.n
    }

    fn start(&mut self) -> Vec<Envelope> {
        match self.to_send.take() {
            Some(payload) => Self::envelopes(self.instance.broadcast(payload)),
            None => Vec::new(),
        }
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        let Ok(msg) = RbcMsg::from_bytes(payload) else {
            return Vec::new();
        };
        Self::envelopes(self.instance.on_message(from, &msg))
    }

    fn output(&self) -> Option<Bytes> {
        self.instance.delivered().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;
    use delphi_sim::adversary::Crash;
    use delphi_sim::{Simulation, Topology};

    #[test]
    fn msg_roundtrip() {
        for msg in [
            RbcMsg::Send(Bytes::from_static(b"a")),
            RbcMsg::Echo(Bytes::from_static(b"")),
            RbcMsg::Ready(Bytes::from_static(b"xyz")),
        ] {
            assert_eq!(roundtrip(&msg).unwrap(), msg);
        }
        assert!(RbcMsg::from_bytes(&[9, 0]).is_err());
    }

    fn run_rbc(
        n: usize,
        t: usize,
        payload: &'static [u8],
        faulty: &[usize],
        make_faulty: impl Fn(NodeId) -> Box<dyn Protocol<Output = Bytes>>,
        seed: u64,
    ) -> Vec<Bytes> {
        let nodes: Vec<Box<dyn Protocol<Output = Bytes>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    make_faulty(id)
                } else {
                    let p = (id == NodeId(0)).then(|| Bytes::from_static(payload));
                    RbcNode::new(id, n, t, NodeId(0), p).boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(report.all_honest_finished(), "RBC stalled: {:?}", report.stop);
        report.honest_outputs().cloned().collect()
    }

    #[test]
    fn validity_honest_broadcaster() {
        let outs = run_rbc(4, 1, b"hello", &[], |_| unreachable!(), 1);
        for o in outs {
            assert_eq!(&o[..], b"hello");
        }
    }

    #[test]
    fn tolerates_crashed_follower() {
        let outs = run_rbc(4, 1, b"hello", &[2], |id| Box::new(Crash::new(id, 4)), 2);
        assert_eq!(outs.len(), 3);
        for o in outs {
            assert_eq!(&o[..], b"hello");
        }
    }

    /// Equivocating broadcaster: sends payload A to half, B to the rest.
    struct TwoFaced {
        me: NodeId,
        n: usize,
    }
    impl Protocol for TwoFaced {
        type Output = Bytes;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            (0..self.n)
                .filter(|&d| d != self.me.index())
                .map(|d| {
                    let payload = if d % 2 == 0 { b"AAAA".as_slice() } else { b"BBBB".as_slice() };
                    let msg = RbcMsg::Send(Bytes::copy_from_slice(payload));
                    Envelope::to_one(NodeId(d as u16), msg.to_bytes())
                })
                .collect()
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            Vec::new()
        }
        fn output(&self) -> Option<Bytes> {
            None
        }
    }

    #[test]
    fn equivocating_broadcaster_cannot_split_delivery() {
        // Run several schedules; honest nodes may or may not deliver, but
        // any two that deliver must deliver the same payload (agreement).
        for seed in 0..10 {
            let n = 4;
            let nodes: Vec<Box<dyn Protocol<Output = Bytes>>> = NodeId::all(n)
                .map(|id| {
                    if id == NodeId(0) {
                        Box::new(TwoFaced { me: id, n }) as Box<dyn Protocol<Output = Bytes>>
                    } else {
                        RbcNode::new(id, n, 1, NodeId(0), None).boxed()
                    }
                })
                .collect();
            let report =
                Simulation::new(Topology::lan(n)).seed(seed).faulty(&[NodeId(0)]).run(nodes);
            let delivered: Vec<&Bytes> = report.outputs[1..].iter().flatten().collect();
            for a in &delivered {
                for b in &delivered {
                    assert_eq!(a, b, "agreement violated at seed {seed}");
                }
            }
        }
    }

    #[test]
    fn totality_one_delivers_all_deliver() {
        // With an honest broadcaster and no faults every node delivers;
        // covered by validity test. Here: broadcaster crashes after SEND
        // reaches everyone — totality still holds because echoes flow.
        let n = 4;
        let nodes: Vec<Box<dyn Protocol<Output = Bytes>>> = NodeId::all(n)
            .map(|id| {
                let p = (id == NodeId(0)).then(|| Bytes::from_static(b"once"));
                if id == NodeId(0) {
                    // Broadcaster sends, then never responds again.
                    Box::new(delphi_sim::adversary::SilentAfter::new(
                        RbcNode::new(id, n, 1, NodeId(0), p),
                        0,
                    )) as Box<dyn Protocol<Output = Bytes>>
                } else {
                    RbcNode::new(id, n, 1, NodeId(0), p).boxed()
                }
            })
            .collect();
        let report = Simulation::new(Topology::lan(n)).seed(5).faulty(&[NodeId(0)]).run(nodes);
        assert!(report.all_honest_finished());
        for o in report.honest_outputs() {
            assert_eq!(&o[..], b"once");
        }
    }

    #[test]
    fn non_broadcaster_send_ignored() {
        let mut inst = RbcInstance::new(NodeId(0), 4, 1, NodeId(1));
        let actions = inst.on_message(NodeId(2), &RbcMsg::Send(Bytes::from_static(b"fake")));
        assert!(actions.is_empty());
        assert!(!inst.sent_echo);
    }

    #[test]
    fn duplicate_echoes_ignored() {
        let mut inst = RbcInstance::new(NodeId(0), 4, 1, NodeId(1));
        let payload = Bytes::from_static(b"p");
        let _ = inst.on_message(NodeId(2), &RbcMsg::Echo(payload.clone()));
        let _ = inst.on_message(NodeId(2), &RbcMsg::Echo(payload.clone()));
        assert_eq!(inst.echoes[0].senders.len(), 1);
        // A sender switching payloads is also ignored (one echo each).
        let _ = inst.on_message(NodeId(2), &RbcMsg::Echo(Bytes::from_static(b"q")));
        assert_eq!(inst.echoes.len(), 1);
    }

    #[test]
    fn digest_flood_bounded() {
        let mut inst = RbcInstance::new(NodeId(0), 40, 13, NodeId(1));
        for i in 0..20u16 {
            let payload = Bytes::from(i.to_be_bytes().to_vec());
            let _ = inst.on_message(NodeId(i + 2), &RbcMsg::Echo(payload));
        }
        assert!(inst.echoes.len() <= MAX_TRACKED_DIGESTS);
    }

    #[test]
    #[should_panic(expected = "only the broadcaster")]
    fn non_broadcaster_cannot_start() {
        let mut inst = RbcInstance::new(NodeId(0), 4, 1, NodeId(1));
        let _ = inst.broadcast(Bytes::from_static(b"nope"));
    }
}
