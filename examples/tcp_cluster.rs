//! A real Delphi cluster over TCP on localhost: five processes' worth of
//! nodes, each in its own tokio task, talking through HMAC-authenticated
//! sockets — the same deployment shape as the paper's testbeds.
//!
//! Run with: `cargo run --example tcp_cluster`

use std::net::SocketAddr;

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::crypto::Keychain;
use delphi::net::{run_node, RunOptions};
use delphi::primitives::NodeId;

const SEED: &[u8] = b"tcp-cluster-example";

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(512.0)
        .epsilon(2.0)
        .build()?;

    // Reserve distinct loopback ports by binding and releasing them.
    let mut addrs: Vec<SocketAddr> = Vec::new();
    {
        let mut holders = Vec::new();
        for _ in 0..n {
            let l = tokio::net::TcpListener::bind("127.0.0.1:0").await?;
            addrs.push(l.local_addr()?);
            holders.push(l);
        }
    }
    println!("cluster addresses: {addrs:?}");

    // Five oracles with BTC quotes a few dollars apart.
    let inputs = [40_012.0, 40_015.5, 40_013.2, 40_011.1, 40_016.9];
    let mut handles = Vec::new();
    for id in NodeId::all(n) {
        let keychain = Keychain::derive(SEED, id, n);
        let node = DelphiNode::new(cfg.clone(), id, inputs[id.index()]);
        let addrs = addrs.clone();
        handles.push(tokio::spawn(async move {
            run_node(node, keychain, addrs, RunOptions::default()).await
        }));
    }

    let mut outputs = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let (output, stats) = h.await??;
        println!(
            "node {i}: input {:>9.2}$ -> output {:>11.4}$ | {} frames / {} bytes sent, {} dropped",
            inputs[i], output, stats.sent_frames, stats.sent_bytes, stats.dropped_frames
        );
        outputs.push(output);
    }

    let spread = outputs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - outputs.iter().copied().fold(f64::INFINITY, f64::min);
    println!("output spread over real TCP: {spread:.6}$ (ε = {}$)", cfg.epsilon());
    assert!(spread <= cfg.epsilon());
    Ok(())
}
