#![forbid(unsafe_code)]
//! **Streaming-oracle throughput figure**: sustained agreements/sec and
//! wire bytes/agreement for a long-lived epoch pipeline, swept over
//! basket size × epoch rate (pipeline depth), with adaptive batch
//! flushing compared against per-step flushing.
//!
//! This is the "heavy traffic" deployment shape (DORA, arXiv:2305.03903):
//! the cluster agrees on a fresh k-asset basket epoch after epoch instead
//! of running one agreement and stopping.
//!
//! ```text
//! cargo run --release -p delphi-bench --bin fig_throughput [--quick]
//! cargo run --release -p delphi-bench --bin fig_throughput -- --cluster cluster.toml
//! ```
//!
//! Simulation mode sweeps deterministically (simulated clock, fixed
//! seeds), so the numbers are machine-independent; with `BENCH_JSON=<file>`
//! each cell emits gate-compatible records (`ns_per_agreement`,
//! `bytes_per_agreement`, `frames_per_agreement`) that `bench-gate`
//! compares against the checked-in `BENCH_fig.json`.
//!
//! Cluster mode (`--cluster <toml>`, build `delphi-node` first) runs the
//! epoch stream twice over real sockets and processes — per-step and
//! adaptive flushing — and reports measured agreements/sec, wire
//! bytes/agreement, and frames/agreement.

use delphi_bench::cluster::{
    cluster_flag, run_cluster, summarize_epochs, ClusterRunSpec, LOCAL_EPSILON,
};
use delphi_bench::{
    emit_bench_json, oracle_config, quick_mode, run_epoch_delphi, run_epoch_delphi_full_sharded,
    run_epoch_delphi_sharded, run_epoch_vector_delphi, TextTable,
};
use delphi_primitives::{EpochConfig, FlushPolicy};
use delphi_sim::Topology;
use delphi_workloads::{EpochFeed, MultiAssetConfig};

/// The adaptive policy under test; its `max_delay` doubles as the
/// simulator's tick interval.
const ADAPTIVE: FlushPolicy = FlushPolicy::Adaptive {
    max_entries: 16,
    max_bytes: 8 * 1024,
    max_delay: std::time::Duration::from_millis(1),
};

fn run_cluster_mode(config: std::path::PathBuf) {
    let epochs = 30u32;
    let assets = 4usize;
    println!(
        "== Streaming-oracle throughput (cluster mode): {epochs} epochs x {assets} assets over \
         real sockets, per-step vs adaptive flushing ==\n"
    );
    let mut measured = Vec::new();
    for adaptive in [false, true] {
        let label = if adaptive { "adaptive" } else { "per-step" };
        let mut spec = ClusterRunSpec::new(config.clone());
        spec.assets = assets;
        spec.epochs = epochs;
        spec.depth = 2;
        spec.window = 6;
        spec.adaptive = adaptive;
        spec.deadline_ms = 180_000;
        let outcome = match run_cluster(&spec) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("fig_throughput: {label} cluster run failed: {e}");
                std::process::exit(1);
            }
        };
        let expected = u64::from(epochs) * assets as u64;
        println!("{label:>9}: {}", summarize_epochs(&outcome, LOCAL_EPSILON, expected));
        assert!(
            outcome.epoch_converged(LOCAL_EPSILON, expected),
            "{label}: epoch stream incomplete or diverged"
        );
        measured.push(outcome.total_stats());
    }
    let (per_step, adaptive) = (measured[0], measured[1]);
    // Independent asynchronous executions: compare the
    // schedule-independent per-entry frame cost.
    let per = |v: u64, s: &delphi_net::NetStats| v as f64 / s.sent_entries as f64;
    println!(
        "\nframes per envelope: per-step {:.3} vs adaptive {:.3} (bytes/envelope {:.1} vs {:.1})",
        per(per_step.sent_frames, &per_step),
        per(adaptive.sent_frames, &adaptive),
        per(per_step.sent_bytes, &per_step),
        per(adaptive.sent_bytes, &adaptive),
    );
    assert!(
        adaptive.sent_frames * per_step.sent_entries < per_step.sent_frames * adaptive.sent_entries,
        "adaptive flushing must cut frames per envelope over real sockets"
    );
}

fn main() {
    if let Some(config) = cluster_flag() {
        run_cluster_mode(config);
        return;
    }
    let quick = quick_mode();
    let n = 4;
    let epochs: u32 = if quick { 12 } else { 30 };
    let baskets: &[usize] = if quick { &[4] } else { &[1, 4, 8] };
    let depths: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let cfg = oracle_config(n, 2.0);
    println!(
        "== Streaming-oracle throughput: n = {n}, {epochs} epochs, basket size x pipeline depth, \
         per-step vs adaptive flushing (simulated geo testbed) ==\n"
    );

    let mut table = TextTable::new(&[
        "assets",
        "depth",
        "agr/s step",
        "agr/s adpt",
        "B/agr step",
        "B/agr adpt",
        "frames/agr step",
        "frames/agr adpt",
    ]);
    let mut headline = None;
    for &k in baskets {
        let feed = EpochFeed::new(MultiAssetConfig::synthetic(k), 7);
        for &depth in depths {
            let window = depth + 4;
            let seed = 7_000 + (k * 10 + depth) as u64;
            let epoch_cfg = EpochConfig::new(epochs, k as u16, depth, window, cfg.t());
            let step = run_epoch_delphi(
                &cfg,
                &feed,
                epoch_cfg,
                FlushPolicy::PerStep,
                Topology::aws_geo(n),
                seed,
            );
            let adpt =
                run_epoch_delphi(&cfg, &feed, epoch_cfg, ADAPTIVE, Topology::aws_geo(n), seed);
            for (label, p) in [("step", &step), ("adaptive", &adpt)] {
                assert_eq!(p.stale_epochs, 0, "honest sweep must not skip epochs ({label})");
                assert!(p.peak_resident <= window, "live-window bound violated ({label})");
                assert!(p.worst_spread <= cfg.epsilon() + 1e-9, "epoch diverged ({label})");
                let id = |metric: &str| format!("fig_throughput/k{k}_d{depth}_{label}_{metric}");
                emit_bench_json(
                    &id("ns_per_agreement"),
                    p.throughput.sim_seconds * 1e9 / p.throughput.agreements as f64,
                );
                emit_bench_json(&id("bytes_per_agreement"), p.throughput.bytes_per_agreement());
                emit_bench_json(&id("frames_per_agreement"), p.throughput.frames_per_agreement());
            }
            table.row(&[
                k.to_string(),
                depth.to_string(),
                format!("{:.1}", step.throughput.agreements_per_sec()),
                format!("{:.1}", adpt.throughput.agreements_per_sec()),
                format!("{:.0}", step.throughput.bytes_per_agreement()),
                format!("{:.0}", adpt.throughput.bytes_per_agreement()),
                format!("{:.1}", step.throughput.frames_per_agreement()),
                format!("{:.1}", adpt.throughput.frames_per_agreement()),
            ]);
            if headline.is_none() && k >= 4 && depth >= 2 {
                headline = Some((step, adpt));
            }
            eprintln!("  k={k} depth={depth} done");
        }
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());

    // Receive-sharding sweep: the CPU-bound CPS regime (slow per-message
    // receive CPU, sub-millisecond latency — the paper's Fig. 7-right
    // regime) at basket 8, where per-node dispatch is the throughput
    // ceiling. Senders flush per (destination, shard) and the simulator
    // runs one receive CPU lane per shard — the exact model of
    // `delphi-net`'s sharded dispatch (`RunOptions::recv_shards`).
    let shard_epochs: u32 = if quick { 10 } else { 30 };
    let shard_depth: usize = if quick { 2 } else { 4 };
    let shard_basket = 8usize;
    println!(
        "\n== Receive sharding: n = {n}, {shard_epochs} epochs, basket {shard_basket}, depth \
         {shard_depth}, CPS (CPU-bound) testbed, adaptive flushing ==\n"
    );
    let shard_feed = EpochFeed::new(MultiAssetConfig::synthetic(shard_basket), 11);
    let shard_cfg =
        EpochConfig::new(shard_epochs, shard_basket as u16, shard_depth, shard_depth + 4, cfg.t());
    let mut shard_table = TextTable::new(&["shards", "agr/s", "B/agr", "frames/agr"]);
    let mut rates = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let point = run_epoch_delphi_sharded(
            &cfg,
            &shard_feed,
            shard_cfg,
            ADAPTIVE,
            Topology::cps(n, n),
            9_001,
            shards,
        );
        assert_eq!(point.stale_epochs, 0, "honest shard sweep must not skip epochs");
        assert!(point.worst_spread <= cfg.epsilon() + 1e-9, "epoch diverged (shards={shards})");
        let id = |metric: &str| {
            format!("fig_throughput/k{shard_basket}_d{shard_depth}_s{shards}_cps_{metric}")
        };
        emit_bench_json(
            &id("ns_per_agreement"),
            point.throughput.sim_seconds * 1e9 / point.throughput.agreements as f64,
        );
        emit_bench_json(&id("bytes_per_agreement"), point.throughput.bytes_per_agreement());
        emit_bench_json(&id("frames_per_agreement"), point.throughput.frames_per_agreement());
        shard_table.row(&[
            shards.to_string(),
            format!("{:.1}", point.throughput.agreements_per_sec()),
            format!("{:.0}", point.throughput.bytes_per_agreement()),
            format!("{:.1}", point.throughput.frames_per_agreement()),
        ]);
        rates.push(point.throughput.agreements_per_sec());
        eprintln!("  shards={shards} done");
    }
    println!("{}", shard_table.render());
    println!(
        "sharded receive speedup at basket {shard_basket}: x{:.2} (2 shards), x{:.2} (4 shards)",
        rates[1] / rates[0],
        rates[2] / rates[0],
    );
    assert!(
        rates[1] > rates[0] && rates[2] > rates[0],
        "receive sharding must raise simulated agreements/s at basket >= 8: {rates:?}"
    );

    // Send x receive sharding sweep: the CPS testbed in its encode-bound
    // regime — same sub-millisecond latency and shared 100 Mbit links,
    // but per-node CPU dominated by per-byte frame encode + MAC work
    // (the regime where the egress pipeline is the ceiling). Every cell
    // charges send CPU on encode bytes via per-node *send* lanes — the
    // model of `delphi-net`'s egress pipeline (`RunOptions::send_shards`)
    // — so the 1x1 cell is the serial-pipeline baseline and 4x4 is the
    // fully sharded one. Bytes are conserved when a basket splits across
    // shard classes, so a byte-dominated cost is what lane parallelism
    // can overlap; the legacy receive-only rows above stay untouched
    // (send lanes off, stock CPS cost).
    let encode_bound = || {
        Topology::cps(n, n)
            .with_cost(delphi_sim::CostModel { per_message_ns: 15_000, per_byte_ns: 1_500 })
    };
    println!(
        "\n== Send x receive sharding: n = {n}, {shard_epochs} epochs, basket {shard_basket}, \
         depth {shard_depth}, encode-bound CPS testbed, adaptive flushing ==\n"
    );
    let mut send_table = TextTable::new(&["send", "recv", "agr/s", "B/agr", "frames/agr"]);
    let mut send_rates = Vec::new();
    for &(ss, rs) in &[(1usize, 1usize), (1, 4), (2, 4), (4, 4)] {
        let point = run_epoch_delphi_full_sharded(
            &cfg,
            &shard_feed,
            shard_cfg,
            ADAPTIVE,
            encode_bound(),
            9_001,
            rs,
            Some(ss),
        );
        assert_eq!(point.stale_epochs, 0, "honest send-shard sweep must not skip epochs");
        assert!(
            point.worst_spread <= cfg.epsilon() + 1e-9,
            "epoch diverged (send={ss}, recv={rs})"
        );
        let id = |metric: &str| {
            format!("fig_throughput/k{shard_basket}_d{shard_depth}_ss{ss}_rs{rs}_cps_{metric}")
        };
        emit_bench_json(
            &id("ns_per_agreement"),
            point.throughput.sim_seconds * 1e9 / point.throughput.agreements as f64,
        );
        emit_bench_json(&id("bytes_per_agreement"), point.throughput.bytes_per_agreement());
        emit_bench_json(&id("frames_per_agreement"), point.throughput.frames_per_agreement());
        send_table.row(&[
            ss.to_string(),
            rs.to_string(),
            format!("{:.1}", point.throughput.agreements_per_sec()),
            format!("{:.0}", point.throughput.bytes_per_agreement()),
            format!("{:.1}", point.throughput.frames_per_agreement()),
        ]);
        send_rates.push(point.throughput.agreements_per_sec());
        eprintln!("  send={ss} recv={rs} done");
    }
    println!("{}", send_table.render());
    println!(
        "sharded egress speedup at basket {shard_basket}: x{:.2} (4x4 over 1x1 serial pipeline)",
        send_rates[3] / send_rates[0],
    );
    assert!(
        send_rates[3] >= 1.6 * send_rates[0],
        "full 4x4 sharding must deliver >= x1.6 agreements/s over the serial 1x1 pipeline: \
         {send_rates:?}"
    );

    // Vector-vs-scalar sweep: each epoch's basket as ONE vector-valued
    // agreement instance (one bundle exchange and one quorum walk per
    // round for the whole basket) against the per-asset scalar baseline,
    // on the same feed/seed/testbed. Runs identically in --quick and full
    // mode so the recorded rows are stable. "macs/agr" is frames per
    // agreement: the TCP runtime HMACs each frame exactly once, so the
    // simulator's frame count is its MAC count. "rounds/agr" comes from
    // the shared round probe: a scalar basket walks `(l_max+1)·r_max`
    // rounds per *asset*, a vector basket walks them once per epoch.
    let vec_epochs: u32 = 10;
    let vec_depth: usize = 2;
    println!(
        "\n== Vector vs scalar baskets: n = {n}, {vec_epochs} epochs, depth {vec_depth}, CPS \
         testbed, adaptive flushing — one vector instance per epoch vs one scalar instance per \
         asset ==\n"
    );
    let mut vector_table =
        TextTable::new(&["assets", "lane", "entries/agr", "macs/agr", "rounds/agr"]);
    let mut at8 = None;
    for &k in &[1usize, 4, 8] {
        let feed = EpochFeed::new(MultiAssetConfig::synthetic(k), 13);
        let vec_cfg = EpochConfig::new(vec_epochs, k as u16, vec_depth, vec_depth + 4, cfg.t());
        let seed = 11_000 + k as u64;
        let scalar = run_epoch_delphi(&cfg, &feed, vec_cfg, ADAPTIVE, Topology::cps(n, n), seed);
        let vector =
            run_epoch_vector_delphi(&cfg, &feed, vec_cfg, ADAPTIVE, Topology::cps(n, n), seed);
        for (lane, p) in [("scalar", &scalar), ("vector", &vector)] {
            assert_eq!(p.stale_epochs, 0, "honest vector sweep must not skip epochs ({lane})");
            assert_eq!(
                p.throughput.agreements,
                u64::from(vec_epochs) * k as u64,
                "every (epoch, dimension) pair must agree ({lane}, k={k})"
            );
            assert!(
                p.worst_spread <= cfg.epsilon() + 1e-9,
                "epoch diverged ({lane}, k={k}): {}",
                p.worst_spread
            );
            let agr = p.throughput.agreements as f64;
            let id = |metric: &str| format!("fig_throughput/vector_k{k}_{lane}_{metric}");
            emit_bench_json(&id("entries_per_agreement"), p.sent_entries as f64 / agr);
            emit_bench_json(&id("macs_per_agreement"), p.throughput.frames_per_agreement());
            emit_bench_json(&id("rounds_per_agreement"), p.rounds as f64 / agr);
            vector_table.row(&[
                k.to_string(),
                lane.to_string(),
                format!("{:.1}", p.sent_entries as f64 / agr),
                format!("{:.1}", p.throughput.frames_per_agreement()),
                format!("{:.1}", p.rounds as f64 / agr),
            ]);
        }
        if k == 8 {
            at8 = Some((scalar, vector));
        }
        eprintln!("  vector-vs-scalar k={k} done");
    }
    println!("{}", vector_table.render());
    let (s8, v8) = at8.expect("sweep covered basket 8");
    let entries_ratio = (s8.sent_entries as f64) / (v8.sent_entries as f64);
    let rounds_ratio = (s8.rounds as f64) / (v8.rounds as f64);
    println!(
        "vector basket 8: x{entries_ratio:.2} fewer wire entries/agreement, x{rounds_ratio:.2} \
         fewer rounds/agreement vs per-asset scalar"
    );
    assert!(
        entries_ratio >= 3.0,
        "vector basket 8 must cut wire entries per agreement >= 3x: x{entries_ratio:.2}"
    );
    assert!(
        rounds_ratio >= 2.0,
        "vector basket 8 must cut rounds per agreement >= 2x: x{rounds_ratio:.2}"
    );

    let (step, adpt) = headline.expect("sweep covered the headline cell");
    println!("shape checks (headline cell: 4+ assets, depth 2+):");
    println!(
        "  adaptive cuts frames/agreement: {} ({:.2} -> {:.2})",
        adpt.throughput.frames_per_agreement() < step.throughput.frames_per_agreement(),
        step.throughput.frames_per_agreement(),
        adpt.throughput.frames_per_agreement(),
    );
    println!(
        "  adaptive cuts bytes/agreement: {} ({:.0} -> {:.0})",
        adpt.throughput.bytes_per_agreement() < step.throughput.bytes_per_agreement(),
        step.throughput.bytes_per_agreement(),
        adpt.throughput.bytes_per_agreement(),
    );
    println!(
        "  envelope counts comparable: {} entries per-step vs {} adaptive",
        step.sent_entries, adpt.sent_entries
    );
    assert!(
        adpt.throughput.frames_per_agreement() < step.throughput.frames_per_agreement(),
        "adaptive flushing must beat per-step on frames per agreement"
    );
}
