//! Integration: the read-side serving layer over real loopback sockets.
//!
//! The in-process test runs a 4-node epoch cluster through
//! `ServiceBuilder::serve` with node 0 serving HTTP, and drives the
//! public endpoints — snapshot, history, attestation, stats, subscribe —
//! from plain blocking sockets, including two requests back-to-back on
//! one keep-alive connection.
//!
//! The ignored test is the process-level smoke: it launches one
//! `delphi-node --api-bind` OS process per node, curls the attestation
//! route over a real socket from *this* process — which never runs the
//! protocol and holds nothing but the deployment seed — and verifies the
//! served certificate offline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use delphi::api::attestation_from_hex;
use delphi::crypto::signing::Verifier;
use delphi::primitives::NodeId;
use delphi::workloads::{EpochFeed, MultiAssetConfig};
use delphi::ServiceBuilder;
use delphi_bench::cluster::{
    reserve_localhost_config, write_temp_config, LOCAL_CLUSTER_SEED, LOCAL_EPSILON,
};
use delphi_bench::{feed_price_source, oracle_config};

const SEED: &[u8] = b"api-serving-test";

/// Serializes the port-reserving tests (same reasoning as
/// `cluster_process.rs`: reserve-by-bind-and-release races between
/// concurrently launching clusters).
static PORT_LOCK: Mutex<()> = Mutex::new(());

fn port_lock() -> MutexGuard<'static, ()> {
    PORT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind a free port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("bound address")).collect()
}

/// One blocking GET on an existing connection; `(status, body)` or `None`
/// if the connection died. Responses are length-delimited (keep-alive).
fn http_get(stream: &mut TcpStream, buf: &mut Vec<u8>, path: &str) -> Option<(u16, String)> {
    let req = format!("GET {path} HTTP/1.1\r\nhost: test\r\n\r\n");
    stream.write_all(req.as_bytes()).ok()?;
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let mut chunk = [0u8; 2048];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.trim().parse().ok())?;
    while buf.len() < head_end + len {
        let mut chunk = [0u8; 2048];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
        }
    }
    let body = String::from_utf8_lossy(&buf[head_end..head_end + len]).to_string();
    buf.drain(..head_end + len);
    Some((status, body))
}

/// Dials `api` fresh and GETs `path` once.
fn http_get_once(api: SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(api).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    http_get(&mut stream, &mut Vec::new(), path)
}

/// Polls `path` until it serves a 200 (the publisher needs a first
/// agreement before `/v0/latest` has anything), failing the test on
/// `deadline`.
fn wait_for_ok(api: SocketAddr, path: &str, deadline: Duration) -> String {
    let end = Instant::now() + deadline;
    loop {
        match http_get_once(api, path) {
            Some((200, body)) => return body,
            _ => assert!(Instant::now() < end, "{path} never served a value"),
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Pulls the string or bare-literal value of `key` out of a flat JSON
/// object body (the serving layer writes its JSON by hand; this reads it
/// the same way).
fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat)? + pat.len();
    let rest = &body[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
// The port lock must span the whole run — the reserved ports stay
// claimed until the cluster is up — so holding a std guard across
// awaits is the point, and the runtime is thread-per-task anyway.
#[allow(clippy::await_holding_lock)]
async fn served_endpoints_answer_over_loopback_sockets() {
    let _guard = port_lock();
    let n = 4;
    let epochs = 6u32;
    let assets = 2u16;
    let cfg = oracle_config(n, 2.0);
    let addrs = free_addrs(n);
    let feed = EpochFeed::new(MultiAssetConfig::synthetic(usize::from(assets)), 11);
    let builder = |id: u16| {
        ServiceBuilder::new(cfg.clone(), NodeId(id))
            .epochs(epochs)
            .assets(assets)
            .pipeline_depth(2)
            .window(6)
            .linger(Duration::from_secs(5))
    };
    let mut peers = Vec::new();
    for id in 1..n as u16 {
        let source = feed_price_source(feed.clone(), NodeId(id), n);
        let handle = builder(id).serve(SEED, addrs.clone(), source).await.expect("peer serve");
        peers.push(tokio::spawn(handle.finish()));
    }
    let source = feed_price_source(feed.clone(), NodeId(0), n);
    let handle = builder(0)
        .api_bind("127.0.0.1:0".parse().expect("loopback addr"))
        .serve(SEED, addrs.clone(), source)
        .await
        .expect("node 0 serve");
    let api = handle.api_addr().expect("api bound");

    // Snapshot route: wait for the first published agreement, then check
    // the body shape.
    let latest = wait_for_ok(api, "/v0/latest/0", Duration::from_secs(30));
    assert!(json_field(&latest, "epoch").is_some(), "latest carries an epoch: {latest}");
    assert_eq!(json_field(&latest, "asset"), Some("0"), "latest names its asset: {latest}");

    // Keep-alive: two different routes back-to-back on one connection.
    {
        let mut stream = TcpStream::connect(api).expect("dial api");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = Vec::new();
        let (status, health) =
            http_get(&mut stream, &mut buf, "/v0/health").expect("health on kept-alive conn");
        assert_eq!(status, 200);
        assert_eq!(json_field(&health, "status"), Some("ok"), "{health}");
        let (status, stats) =
            http_get(&mut stream, &mut buf, "/v0/stats").expect("stats on the same conn");
        assert_eq!(status, 200);
        assert!(json_field(&stats, "published").is_some(), "{stats}");
    }

    // History honors its limit parameter and rejects unknown assets.
    let history = wait_for_ok(api, "/v0/history/1?limit=3", Duration::from_secs(10));
    assert!(json_field(&history, "updates").is_some(), "{history}");
    let (status, _) = http_get_once(api, &format!("/v0/latest/{assets}")).expect("reply");
    assert_eq!(status, 404, "unknown asset is a 404, not a hang");

    // Attestation: served hex decodes to a certificate that verifies
    // offline against nothing but the deployment seed, and its value
    // sits on the epsilon grid next to the served snapshot.
    let att_body = wait_for_ok(api, "/v0/attestation/1", Duration::from_secs(10));
    assert_eq!(json_field(&att_body, "n"), Some("4"), "{att_body}");
    let t: usize = json_field(&att_body, "t").expect("quorum t").parse().expect("t parses");
    let hex = json_field(&att_body, "attestation").expect("attestation hex");
    let att = attestation_from_hex(hex).expect("hex decodes");
    assert!(att.verify(&Verifier::new(SEED), n, t), "attestation verifies offline");
    let served: f64 = json_field(&att_body, "value").expect("value").parse().expect("f64");
    assert!((att.value() - served).abs() <= cfg.epsilon() + 1e-9, "attested value tracks served");
    assert!(!att.verify(&Verifier::new(b"wrong-seed"), n, t), "seed binds the certificate");

    // Subscribe: an ndjson stream delivers an update (or its re-sync
    // snapshot) on a dedicated connection.
    {
        let mut stream = TcpStream::connect(api).expect("dial api");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        stream
            .write_all(b"GET /v0/subscribe/0 HTTP/1.1\r\nhost: test\r\n\r\n")
            .expect("subscribe request");
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while !String::from_utf8_lossy(&seen).contains("\"epoch\"") {
            assert!(Instant::now() < deadline, "subscription never streamed an update");
            let mut chunk = [0u8; 1024];
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(k) => seen.extend_from_slice(&chunk[..k]),
            }
        }
        let text = String::from_utf8_lossy(&seen);
        assert!(text.contains("\"epoch\""), "stream carried an update: {text}");
    }

    let (events, epoch_stats, _net) = handle.finish().await.expect("node 0 epoch run");
    assert_eq!(events.len(), epochs as usize);
    assert_eq!(epoch_stats.stale_epochs, 0);
    for peer in peers {
        peer.await.expect("peer task").expect("peer epoch run");
    }
}

#[test]
#[ignore = "needs the delphi-node binary: cargo build -p delphi-bench --bin delphi-node"]
fn process_cluster_serves_verifiable_attestations() {
    let _guard = port_lock();
    let n = 4;
    let epochs = 60u32;
    let assets = 2usize;
    let cfg = reserve_localhost_config(n);
    let api_addr = free_addrs(1)[0];
    let path = write_temp_config(&cfg, "api-smoke").expect("write config");

    let binary = delphi::net::cluster::find_sibling_binary("delphi-node")
        .expect("delphi-node built next to the test binary");
    let extra: Vec<String> = [
        "--quote-seed",
        "7",
        "--assets",
        &assets.to_string(),
        "--deadline-ms",
        "120000",
        "--epsilon",
        &LOCAL_EPSILON.to_string(),
        "--epochs",
        &epochs.to_string(),
        "--depth",
        "2",
        "--window",
        "6",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let commands = (0..n as u16)
        .map(|id| {
            let mut cmd = delphi::net::cluster::node_command(&binary, &path, id, &extra);
            if id == 0 {
                cmd.arg("--api-bind").arg(api_addr.to_string());
            }
            cmd
        })
        .collect();

    // The curl side races node startup, so it retries until node 0's
    // publisher has something to serve. This thread is the light client:
    // it holds the deployment seed and an address — it never runs the
    // protocol.
    let curler = std::thread::spawn(move || {
        let end = Instant::now() + Duration::from_secs(90);
        loop {
            if let Some((200, body)) = http_get_once(api_addr, "/v0/attestation/0") {
                return body;
            }
            assert!(Instant::now() < end, "api never served an attestation");
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    let outcome = delphi::net::cluster::launch(commands).expect("cluster run succeeds");
    let body = curler.join().expect("curler thread");
    let _ = std::fs::remove_file(&path);

    let expected = u64::from(epochs) * assets as u64;
    assert!(
        outcome.epoch_converged(LOCAL_EPSILON, expected),
        "stream incomplete or diverged: {} agreements per node (expected {expected})",
        outcome.epoch_agreements(),
    );

    // Offline light-client verification: the served certificate checks
    // out against the cluster seed alone.
    let t: usize = json_field(&body, "t").expect("quorum t").parse().expect("t parses");
    let hex = json_field(&body, "attestation").expect("attestation hex");
    let att = attestation_from_hex(hex).expect("hex decodes");
    assert!(
        att.verify(&Verifier::new(LOCAL_CLUSTER_SEED), n, t),
        "served attestation verifies offline in a process that never ran the protocol"
    );
}
