//! A common coin simulated from hashes.
//!
//! Real deployments of FIN-style protocols obtain common coins from
//! threshold cryptography (or hash-based beacons à la HashRand). Standing
//! one up is out of scope for a performance reproduction, so this module
//! keeps exactly the parts the evaluation can observe:
//!
//! - **message pattern**: every node broadcasts one `COIN-SHARE` per
//!   `(instance, round)`, and the coin value is available only after
//!   `t + 1` distinct shares arrive — one message delay, `n²` messages per
//!   flip;
//! - **commonness**: every node reconstructs the same bit, derived as
//!   `HMAC(seed, instance ‖ round) mod 2`;
//! - **verification cost**: callers charge the simulator's CPU model per
//!   share, calibrated to hash verification (FIN is likewise hash-based).
//!
//! What it does *not* provide is cryptographic unpredictability against an
//! adversary who knows `seed` — see DESIGN.md §5 for why that is
//! irrelevant to the latency/bandwidth claims under reproduction.

use delphi_crypto::hmac_sha256;
use delphi_primitives::{NodeBitSet, NodeId};

/// Tracks share collection and reconstructs coin values.
///
/// One `CoinKeeper` serves all `(instance, round)` coins of a protocol
/// run; state is kept per flip.
///
/// # Example
///
/// ```
/// use delphi_baselines::CoinKeeper;
/// use delphi_primitives::NodeId;
///
/// let mut keeper = CoinKeeper::new(b"deployment-seed", 4, 1);
/// assert_eq!(keeper.value(7, 1), None); // no shares yet
/// keeper.add_share(7, 1, NodeId(0));
/// keeper.add_share(7, 1, NodeId(2)); // t + 1 = 2 shares
/// let coin = keeper.value(7, 1).expect("reconstructed");
/// // Every node with the same seed reconstructs the same bit.
/// let mut other = CoinKeeper::new(b"deployment-seed", 4, 1);
/// other.add_share(7, 1, NodeId(1));
/// other.add_share(7, 1, NodeId(3));
/// assert_eq!(other.value(7, 1), Some(coin));
/// ```
#[derive(Debug)]
pub struct CoinKeeper {
    seed: Vec<u8>,
    n: usize,
    t: usize,
    flips: Vec<(u64, NodeBitSet)>,
}

impl CoinKeeper {
    /// Creates a keeper for an `n`-node system tolerating `t` faults.
    pub fn new(seed: &[u8], n: usize, t: usize) -> CoinKeeper {
        CoinKeeper { seed: seed.to_vec(), n, t, flips: Vec::new() }
    }

    fn key(instance: u16, round: u16) -> u64 {
        (u64::from(instance) << 16) | u64::from(round)
    }

    /// Records a share from `from` for coin `(instance, round)`.
    /// Returns `true` if this share completed the reconstruction
    /// threshold (the coin value just became available).
    pub fn add_share(&mut self, instance: u16, round: u16, from: NodeId) -> bool {
        let key = Self::key(instance, round);
        let n = self.n;
        let idx = match self.flips.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.flips.push((key, NodeBitSet::new(n)));
                self.flips.len() - 1
            }
        };
        let set = &mut self.flips[idx].1;
        let before = set.len();
        set.insert(from);
        before < self.t + 1 && set.len() > self.t
    }

    /// The coin value, once `t + 1` shares have been collected.
    pub fn value(&self, instance: u16, round: u16) -> Option<bool> {
        let key = Self::key(instance, round);
        let set = &self.flips.iter().find(|(k, _)| *k == key)?.1;
        if set.len() > self.t {
            Some(self.toss(instance, round))
        } else {
            None
        }
    }

    /// The underlying pseudorandom bit (available to tests; protocol code
    /// must go through [`CoinKeeper::value`] to model share latency).
    pub fn toss(&self, instance: u16, round: u16) -> bool {
        let mut msg = [0u8; 4];
        msg[..2].copy_from_slice(&instance.to_be_bytes());
        msg[2..].copy_from_slice(&round.to_be_bytes());
        hmac_sha256(&self.seed, &msg)[0] & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gating() {
        let mut k = CoinKeeper::new(b"s", 7, 2);
        assert!(!k.add_share(0, 1, NodeId(0)));
        assert!(!k.add_share(0, 1, NodeId(1)));
        assert_eq!(k.value(0, 1), None);
        assert!(k.add_share(0, 1, NodeId(2)), "t+1-th share completes");
        assert!(k.value(0, 1).is_some());
        // Further shares change nothing.
        assert!(!k.add_share(0, 1, NodeId(3)));
    }

    #[test]
    fn duplicate_shares_dont_count() {
        let mut k = CoinKeeper::new(b"s", 4, 1);
        assert!(!k.add_share(3, 2, NodeId(1)));
        assert!(!k.add_share(3, 2, NodeId(1)));
        assert_eq!(k.value(3, 2), None);
    }

    #[test]
    fn coins_are_common_across_nodes_and_vary() {
        let a = CoinKeeper::new(b"seed", 4, 1);
        let b = CoinKeeper::new(b"seed", 4, 1);
        let mut values = Vec::new();
        for inst in 0..8 {
            for round in 1..8 {
                assert_eq!(a.toss(inst, round), b.toss(inst, round));
                values.push(a.toss(inst, round));
            }
        }
        assert!(values.iter().any(|&v| v), "some heads");
        assert!(values.iter().any(|&v| !v), "some tails");
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = CoinKeeper::new(b"seed-1", 4, 1);
        let b = CoinKeeper::new(b"seed-2", 4, 1);
        let differs = (0..64u16).any(|i| a.toss(i, 1) != b.toss(i, 1));
        assert!(differs);
    }

    #[test]
    fn distinct_flips_independent() {
        let mut k = CoinKeeper::new(b"s", 4, 1);
        k.add_share(1, 1, NodeId(0));
        k.add_share(1, 1, NodeId(1));
        assert!(k.value(1, 1).is_some());
        assert_eq!(k.value(1, 2), None);
        assert_eq!(k.value(2, 1), None);
    }
}
