//! A small Rust lexer for rule checking: token stream + allow
//! annotations, with comments, string/char/raw-string literals, and
//! test-only regions (`#[cfg(test)]` items, `#[test]` functions,
//! `mod tests` blocks) stripped or marked so rules see only live code.
//!
//! This is not a full Rust lexer — it only needs to be *sound for the
//! rules*: identifiers, number literals, and single-character punctuation
//! survive; everything inside comments and literals disappears; and every
//! token carries the line it came from plus whether it sits in test-only
//! code. The lexer never panics on any input (see the proptest in
//! `tests/lexer_never_panics.rs`): malformed or truncated input degrades
//! to best-effort tokens, never to an abort.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (also raw identifiers, without the `r#`).
    Ident,
    /// A numeric literal; `value` holds the integer value when it parses.
    Number,
    /// One punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token of live or test code.
#[derive(Clone, Debug)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Classification.
    pub kind: TokenKind,
    /// The token text (one char for `Punct`).
    pub text: String,
    /// Integer value for `Number` tokens that parse as integers.
    pub value: Option<u64>,
    /// Whether the token sits inside a test-only region.
    pub test_code: bool,
}

/// One `lint: allow(<rule>) — <reason>` annotation found in a comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line the annotation text appears on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty reason followed the closing parenthesis.
    /// Reason-less annotations are inert (the violation still fires).
    pub has_reason: bool,
}

/// The lexer's output for one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Tokens in source order, with test regions marked.
    pub tokens: Vec<Token>,
    /// Allow annotations harvested from comments.
    pub allows: Vec<Allow>,
}

impl LexedFile {
    /// Whether `rule` is allowed at `line` (annotation on the same line
    /// or the line directly above, with a reason).
    pub fn allowed_at(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.has_reason && a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Lexes `src`, marking test-only regions. Never panics.
pub fn lex(src: &str) -> LexedFile {
    let mut out = scan(src);
    mark_test_regions(&mut out.tokens);
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Character cursor over `src` with line tracking.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl Cursor<'_> {
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks the character after the next one (clones the iterator; the
    /// lexer only needs two-character lookahead).
    fn peek2(&mut self) -> Option<char> {
        let mut ahead = self.chars.clone();
        ahead.next();
        ahead.next()
    }
}

/// Pass 1: raw scan into tokens + allow annotations.
fn scan(src: &str) -> LexedFile {
    let mut cur = Cursor { chars: src.chars().peekable(), line: 1 };
    let mut out = LexedFile::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                harvest_allow(&text, line, &mut out.allows);
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                let mut text = String::new();
                let mut text_line = line;
                while depth > 0 {
                    match (cur.peek(), cur.peek2()) {
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('\n'), _) => {
                            harvest_allow(&text, text_line, &mut out.allows);
                            text.clear();
                            cur.bump();
                            text_line = cur.line;
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break, // unterminated comment
                    }
                }
                harvest_allow(&text, text_line, &mut out.allows);
            }
            '"' => {
                cur.bump();
                skip_string(&mut cur);
            }
            '\'' => {
                cur.bump();
                skip_char_or_lifetime(&mut cur);
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                match after_ident_prefix(&text, &mut cur) {
                    PrefixAction::Consumed => {}
                    PrefixAction::Keep => {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Ident,
                            text,
                            value: None,
                            test_code: false,
                        });
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let (text, value) = scan_number(&mut cur);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Number,
                    text,
                    value,
                    test_code: false,
                });
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    value: None,
                    test_code: false,
                });
            }
        }
    }
    out
}

/// What to do after lexing an identifier that may prefix a literal.
enum PrefixAction {
    /// The identifier introduced a literal (or raw identifier) that has
    /// been fully consumed; emit nothing (or the raw identifier was
    /// emitted by the caller via `Keep` — see below).
    Consumed,
    /// A plain identifier: the caller emits it.
    Keep,
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw
/// identifiers `r#name` directly after an identifier was lexed.
fn after_ident_prefix(ident: &str, cur: &mut Cursor<'_>) -> PrefixAction {
    let raw_capable = matches!(ident, "r" | "br");
    let byte_capable = matches!(ident, "b");
    match cur.peek() {
        Some('"') if raw_capable || byte_capable => {
            cur.bump();
            if raw_capable {
                skip_raw_string(cur, 0);
            } else {
                skip_string(cur);
            }
            PrefixAction::Consumed
        }
        Some('\'') if byte_capable => {
            cur.bump();
            skip_char_or_lifetime(cur);
            PrefixAction::Consumed
        }
        Some('#') if raw_capable => {
            // Count hashes; a quote makes it a raw string. `r#ident` is a
            // raw identifier: swallow the hash, keep lexing the name as a
            // plain identifier token (rules match it by name).
            let mut ahead = cur.chars.clone();
            let mut hashes = 0usize;
            while ahead.peek() == Some(&'#') {
                ahead.next();
                hashes += 1;
            }
            if ahead.peek() == Some(&'"') {
                for _ in 0..=hashes {
                    cur.bump(); // hashes + opening quote
                }
                skip_raw_string(cur, hashes);
                PrefixAction::Consumed
            } else if hashes == 1 && ident == "r" {
                cur.bump(); // the `#` of a raw identifier
                PrefixAction::Keep
            } else {
                PrefixAction::Keep
            }
        }
        _ => PrefixAction::Keep,
    }
}

/// Consumes a `"`-delimited string body (opening quote already consumed).
fn skip_string(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // the escaped character, whatever it is
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw-string body opened with `hashes` hashes (opening quote
/// already consumed): ends at `"` followed by that many hashes.
fn skip_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    'scan: while let Some(c) = cur.bump() {
        if c != '"' {
            continue;
        }
        let mut ahead = cur.chars.clone();
        for _ in 0..hashes {
            if ahead.next() != Some('#') {
                continue 'scan;
            }
        }
        for _ in 0..hashes {
            cur.bump();
        }
        return;
    }
}

/// Consumes a char/byte literal or recognizes a lifetime (opening `'`
/// already consumed). Lifetimes leave the identifier for the main loop.
fn skip_char_or_lifetime(cur: &mut Cursor<'_>) {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote, with
            // a cap so stray input cannot make this swallow the file.
            cur.bump();
            for _ in 0..12 {
                match cur.bump() {
                    Some('\'') | None => return,
                    _ => {}
                }
            }
        }
        Some(c) if is_ident_start(c) && cur.peek2() != Some('\'') => {
            // A lifetime (`'a`, `'static`): the identifier lexes normally.
        }
        _ => {
            // Plain char literal `'x'` (possibly multi-byte): bounded scan
            // to the closing quote.
            for _ in 0..12 {
                match cur.bump() {
                    Some('\'') | None => return,
                    _ => {}
                }
            }
        }
    }
}

/// Lexes a number literal, returning its text and integer value (hex or
/// decimal; underscores ignored, suffixes and float tails tolerated).
fn scan_number(cur: &mut Cursor<'_>) -> (String, Option<u64>) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else if c == '.' {
            // Consume a float point only when a digit follows (leaves
            // `..` ranges and method calls alone).
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    text.push(c);
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    let digits: String = text.chars().filter(|&c| c != '_').collect();
    let value = if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        let hex: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        u64::from_str_radix(&hex, 16).ok()
    } else {
        let dec: String = digits.chars().take_while(char::is_ascii_digit).collect();
        dec.parse().ok()
    };
    (text, value)
}

/// Scans comment text for `lint: allow(<rule>) — <reason>`.
fn harvest_allow(comment: &str, line: u32, allows: &mut Vec<Allow>) {
    let Some(at) = comment.find("lint: allow(") else { return };
    let Some(rest) = comment.get(at + "lint: allow(".len()..) else { return };
    let Some(close) = rest.find(')') else { return };
    let Some(rule) = rest.get(..close) else { return };
    let tail = rest.get(close + 1..).unwrap_or("");
    // A reason is anything substantive after the closing parenthesis,
    // past separator dashes/em-dashes/colons.
    let reason = tail.trim_start_matches([' ', '\t', '-', '—', '–', ':']).trim();
    allows.push(Allow { line, rule: rule.trim().to_string(), has_reason: !reason.is_empty() });
}

/// Pass 2: flags tokens inside test-only regions.
///
/// A region starts at `#[cfg(test)]`, `#[test]`-style attributes (path
/// ending in `test`), or `mod tests`; it covers any further attributes
/// plus the item body — the next balanced `{…}` block, or through the
/// next `;` for bodyless items.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = parse_test_attr(tokens, i) {
            let end = mark_item(tokens, i, after_attr);
            i = end;
            continue;
        }
        if is_mod_tests(tokens, i) {
            let end = mark_item(tokens, i, i + 2);
            i = end;
            continue;
        }
        i += 1;
    }
}

fn tok_is(tokens: &[Token], i: usize, kind: TokenKind, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == kind && t.text == text)
}

fn is_mod_tests(tokens: &[Token], i: usize) -> bool {
    tok_is(tokens, i, TokenKind::Ident, "mod") && tok_is(tokens, i + 1, TokenKind::Ident, "tests")
}

/// If `tokens[i..]` opens a test-marking attribute, returns the index
/// just past its closing `]`.
fn parse_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tok_is(tokens, i, TokenKind::Punct, "#") || !tok_is(tokens, i + 1, TokenKind::Punct, "[") {
        return None;
    }
    // Find the matching `]`.
    let mut depth = 0usize;
    let mut end = None;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let end = end?;
    let content = tokens.get(i + 2..end)?;
    if attr_is_test(content) {
        Some(end + 1)
    } else {
        None
    }
}

/// Whether attribute content (tokens between `[` and `]`) marks test
/// code: `cfg(test)` exactly, or a path whose last segment is `test`
/// (`test`, `tokio::test`, optionally with arguments).
fn attr_is_test(content: &[Token]) -> bool {
    let first = match content.first() {
        Some(t) if t.kind == TokenKind::Ident => t,
        _ => return false,
    };
    if first.text == "cfg" {
        // Exactly `cfg(test)` — NOT `cfg(not(test))` or anything else.
        return content.len() == 4
            && tok_is(content, 1, TokenKind::Punct, "(")
            && tok_is(content, 2, TokenKind::Ident, "test")
            && tok_is(content, 3, TokenKind::Punct, ")");
    }
    // Path segments up to the first `(` or the end.
    let mut last_ident = "";
    for t in content {
        match t.kind {
            TokenKind::Ident => last_ident = &t.text,
            TokenKind::Punct if t.text == ":" => {}
            _ => break,
        }
    }
    last_ident == "test"
}

/// Marks tokens from `start` through the end of the item whose body (or
/// trailing attributes) begins at `from`; returns the index past the item.
fn mark_item(tokens: &mut [Token], start: usize, from: usize) -> usize {
    // Skip any further attributes between the marker and the item.
    let mut i = from;
    while tok_is(tokens, i, TokenKind::Punct, "#") && tok_is(tokens, i + 1, TokenKind::Punct, "[") {
        let mut depth = 0usize;
        let mut advanced = false;
        for (j, t) in tokens.iter().enumerate().skip(i + 1) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        i = j + 1;
                        advanced = true;
                        break;
                    }
                }
                _ => {}
            }
        }
        if !advanced {
            break;
        }
    }
    // The item ends at the close of its first balanced `{…}` block, or at
    // the first `;` met before any `{`.
    let mut depth = 0usize;
    let mut end = tokens.len();
    for (j, t) in tokens.iter().enumerate().skip(i) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
            (TokenKind::Punct, ";") if depth == 0 => {
                end = j + 1;
                break;
            }
            _ => {}
        }
    }
    for t in tokens.get_mut(start..end).unwrap_or_default() {
        t.test_code = true;
    }
    end.max(start + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && !t.test_code)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let src = r##"
            // unwrap() in a line comment
            /* unwrap() in /* a nested */ block comment */
            let s = "call .unwrap() inside";
            let r = r#"raw "quoted" unwrap()"#;
            let c = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "
            fn live() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { b.unwrap(); }
            }
        ";
        let lexed = lex(src);
        let live: Vec<_> =
            lexed.tokens.iter().filter(|t| !t.test_code && t.text == "unwrap").collect();
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))] fn live() { a.unwrap(); }";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.text == "unwrap" && !t.test_code));
    }

    #[test]
    fn test_attribute_marks_function() {
        let src = "
            #[tokio::test(flavor = \"multi_thread\")]
            async fn t() { x.unwrap(); }
            fn live() { y.expect(\"msg\"); }
        ";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap" || t.test_code));
        assert!(lexed.tokens.iter().any(|t| t.text == "expect" && !t.test_code));
    }

    #[test]
    fn allows_are_harvested_with_reasons() {
        let src = "
            // lint: allow(no-panic) — bounded by construction
            x.unwrap();
            // lint: allow(bounded-channel)
            y.unwrap();
        ";
        let lexed = lex(src);
        assert!(lexed.allowed_at("no-panic", 3));
        assert!(!lexed.allowed_at("bounded-channel", 5), "reason-less allow is inert");
    }

    #[test]
    fn numbers_parse_hex_and_decimal() {
        let lexed = lex("const A: u16 = 0xFFFF; const B: u32 = 65_534u32; let f = 1.5e3;");
        let values: Vec<Option<u64>> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Number).map(|t| t.value).collect();
        assert!(values.contains(&Some(0xFFFF)));
        assert!(values.contains(&Some(65534)));
    }

    #[test]
    fn raw_identifier_is_kept() {
        let ids = idents("let r#type = 1; r#type.frob();");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"frob".to_string()));
    }
}
