#![forbid(unsafe_code)]
//! Bench regression gate CLI: compares a fresh `BENCH_JSON` run against a
//! checked-in reference and exits non-zero on regressions.
//!
//! ```text
//! bench-gate --reference BENCH_micro.json --fresh BENCH_micro.ci.json
//!            [--tolerance 0.30] [--no-normalize]
//! ```
//!
//! By default the comparison is *normalized*: the median fresh/reference
//! ratio across the suite is treated as the machine-speed factor, so a
//! uniformly slower CI runner passes while a benchmark that regressed
//! relative to the rest of the suite fails (see
//! `delphi_bench::regression`). `--no-normalize` gives the plain
//! ±tolerance check for same-machine comparisons.

use std::process::ExitCode;

use delphi_bench::regression::{compare, BenchRecord};

struct Args {
    reference: std::path::PathBuf,
    fresh: std::path::PathBuf,
    tolerance: f64,
    normalize: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut reference = None;
    let mut fresh = None;
    let mut tolerance = 0.30f64;
    let mut normalize = true;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--reference" => reference = Some(value("--reference")?.into()),
            "--fresh" => fresh = Some(value("--fresh")?.into()),
            "--tolerance" => {
                tolerance =
                    value("--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--no-normalize" => normalize = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        reference: reference.ok_or("--reference is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        tolerance,
        normalize,
    })
}

fn read_records(path: &std::path::Path) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let records = BenchRecord::parse_lines(&text);
    if records.is_empty() {
        return Err(format!("{} contains no benchmark records", path.display()));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (reference, fresh) = match (read_records(&args.reference), read_records(&args.fresh)) {
        (Ok(r), Ok(f)) => (r, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = compare(&reference, &fresh, args.tolerance, args.normalize);
    print!("{report}");
    if report.failed() {
        let ids: Vec<&str> = report.regressions().map(|v| v.id.as_str()).collect();
        eprintln!("bench-gate: regressions in {}", ids.join(", "));
        ExitCode::FAILURE
    } else {
        println!("bench-gate: no regressions");
        ExitCode::SUCCESS
    }
}
