//! Shared harness for multi-process cluster runs (the `delphi-node` /
//! `delphi-cluster` binaries and the fig6 `--cluster` mode).
//!
//! The division of labour: `delphi-net` owns the deployment-agnostic
//! pieces (cluster-file format, process launcher, report schema); this
//! module binds them to the Delphi protocol — which binary to run, which
//! arguments carry the paper's parameters, and how a localhost config
//! with genuinely free ports is produced for smoke runs.

use std::net::TcpListener;
use std::path::PathBuf;

use delphi_net::cluster::{
    find_sibling_binary, launch, node_command, ClusterError, ClusterOutcome,
};
use delphi_net::config::ClusterConfig;

/// Key material used by generated localhost cluster configs.
pub const LOCAL_CLUSTER_SEED: &[u8] = b"delphi-local-cluster";

/// How one cluster run of `delphi-node` processes is parameterized.
#[derive(Clone, Debug)]
pub struct ClusterRunSpec {
    /// Path to the cluster TOML handed to every node process.
    pub config: PathBuf,
    /// Node binary; `None` resolves the sibling `delphi-node`.
    pub node_binary: Option<PathBuf>,
    /// Shared seed for the deterministic per-node inputs.
    pub quote_seed: u64,
    /// Independent Delphi instances (assets) multiplexed per node.
    pub assets: usize,
    /// Run with one frame per envelope instead of step batching.
    pub unbatched: bool,
    /// Per-node protocol deadline in milliseconds.
    pub deadline_ms: u64,
    /// Protocol ε forwarded to every node (the agreement tolerance the
    /// nodes actually run with, not just a launcher-side check).
    pub epsilon: f64,
    /// Epoch-stream length; 0 runs the classic one-shot agreement.
    pub epochs: u32,
    /// Epochs in flight at once (streaming runs).
    pub depth: usize,
    /// Live-window size in epochs (streaming runs; ≥ depth).
    pub window: usize,
    /// Adaptive batch flushing (size/time triggers) instead of per-step.
    pub adaptive: bool,
    /// Receive dispatch shards per node (1 = unsharded).
    pub recv_shards: usize,
    /// Egress send lanes per node (1 = single lane).
    pub send_shards: usize,
    /// Run each epoch's basket as one vector-valued agreement instance
    /// (streaming runs only) instead of per-asset scalar instances.
    pub vector: bool,
}

impl ClusterRunSpec {
    /// A spec with the defaults the fig6 binaries use.
    pub fn new(config: PathBuf) -> ClusterRunSpec {
        ClusterRunSpec {
            config,
            node_binary: None,
            quote_seed: 7,
            assets: 1,
            unbatched: false,
            deadline_ms: 60_000,
            epsilon: LOCAL_EPSILON,
            epochs: 0,
            depth: 2,
            window: 6,
            adaptive: false,
            recv_shards: 1,
            send_shards: 1,
            vector: false,
        }
    }
}

/// Launches one `delphi-node` process per `[[node]]` entry of the spec's
/// config and collects their reports.
///
/// # Errors
///
/// [`ClusterError`] if the config cannot be loaded, the binary is
/// missing, a process fails, or a report does not parse.
pub fn run_cluster(spec: &ClusterRunSpec) -> Result<ClusterOutcome, ClusterError> {
    let cfg = ClusterConfig::load(&spec.config)
        .map_err(|e| ClusterError::Config { why: e.to_string() })?;
    let binary = match &spec.node_binary {
        Some(p) => p.clone(),
        None => find_sibling_binary("delphi-node")?,
    };
    let mut extra = vec![
        "--quote-seed".to_string(),
        spec.quote_seed.to_string(),
        "--assets".to_string(),
        spec.assets.to_string(),
        "--deadline-ms".to_string(),
        spec.deadline_ms.to_string(),
        "--epsilon".to_string(),
        spec.epsilon.to_string(),
    ];
    if spec.epochs > 0 {
        extra.extend([
            "--epochs".to_string(),
            spec.epochs.to_string(),
            "--depth".to_string(),
            spec.depth.to_string(),
            "--window".to_string(),
            spec.window.to_string(),
        ]);
        if spec.vector {
            extra.push("--vector".to_string());
        }
    }
    if spec.adaptive {
        extra.push("--adaptive".to_string());
    }
    if spec.recv_shards > 1 {
        extra.extend(["--recv-shards".to_string(), spec.recv_shards.to_string()]);
    }
    if spec.send_shards > 1 {
        extra.extend(["--send-shards".to_string(), spec.send_shards.to_string()]);
    }
    if spec.unbatched {
        extra.push("--unbatched".to_string());
    }
    let commands =
        (0..cfg.n()).map(|id| node_command(&binary, &spec.config, id as u16, &extra)).collect();
    launch(commands)
}

/// Builds an `n`-node localhost [`ClusterConfig`] on ports that are free
/// *right now* (reserved by binding and releasing ephemeral listeners, the
/// same trick the loopback tests use).
///
/// # Panics
///
/// Panics if loopback listeners cannot be bound at all.
pub fn reserve_localhost_config(n: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::localhost(n, 1, LOCAL_CLUSTER_SEED);
    let mut holders = Vec::with_capacity(n);
    for node in &mut cfg.nodes {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        node.address = l.local_addr().expect("local addr");
        holders.push(l);
    }
    drop(holders);
    cfg
}

/// Writes `cfg` as TOML to a per-process temp file tagged `tag`, returning
/// its path.
///
/// # Errors
///
/// Propagates the underlying I/O failure.
pub fn write_temp_config(cfg: &ClusterConfig, tag: &str) -> std::io::Result<PathBuf> {
    let path = std::env::temp_dir().join(format!("delphi-{tag}-{}.toml", std::process::id()));
    std::fs::write(&path, cfg.to_toml())?;
    Ok(path)
}

/// Renders a one-line summary of a finished cluster run (used by the
/// launcher binary and the fig6 `--cluster` mode).
pub fn summarize(outcome: &ClusterOutcome, epsilon: f64) -> String {
    let total = outcome.total_stats();
    format!(
        "{} nodes | spread {:.6}$ (eps = {epsilon}$, converged: {}) | slowest node {:.0} ms | \
         {} frames for {} envelopes / {:.2} MiB on the wire / {} MACs",
        outcome.reports.len(),
        outcome.spread(),
        outcome.converged(epsilon),
        outcome.max_elapsed_ms(),
        total.sent_frames,
        total.sent_entries,
        total.sent_bytes as f64 / (1024.0 * 1024.0),
        total.mac_ops,
    )
}

/// Renders a one-line summary of a finished epoch-stream cluster run.
/// Vector-mode runs (nonzero `vector_dims` in the node stats) get their
/// basket counters appended so smoke logs show the mode actually ran.
pub fn summarize_epochs(outcome: &ClusterOutcome, epsilon: f64, expected: u64) -> String {
    let total = outcome.total_stats();
    let secs = outcome.max_elapsed_ms() / 1e3;
    let agreements = outcome.epoch_agreements();
    let vector = if total.vector_dims > 0 {
        format!(
            " | vector baskets: {} instances x {} dims",
            total.vector_instances, total.vector_dims
        )
    } else {
        String::new()
    };
    format!(
        "{} nodes | {agreements} agreements per node (expected {expected}) | worst epoch spread \
         {:.6}$ (eps = {epsilon}$, converged: {}) | {:.1} agreements/s | {:.0} wire B/agreement | \
         {:.2} frames/agreement | {} late entries{vector}",
        outcome.reports.len(),
        outcome.epoch_spread(),
        outcome.epoch_converged(epsilon, expected),
        if secs > 0.0 { agreements as f64 / secs } else { 0.0 },
        if agreements > 0 { total.sent_bytes as f64 / agreements as f64 } else { f64::NAN },
        if agreements > 0 { total.sent_frames as f64 / agreements as f64 } else { f64::NAN },
        total.late_entries,
    )
}

/// Parses `--cluster <path>` out of the argument list (used by the fig6
/// binaries to switch from simulation to the real harness). A bare
/// `--cluster` with no path is a hard CLI error — silently falling back
/// to the multi-minute simulated sweep would hide the typo.
pub fn cluster_flag() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cluster" {
            let Some(path) = args.next() else {
                eprintln!("--cluster requires a config path");
                std::process::exit(2);
            };
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Convenience wrapper for smoke tests and examples: reserves ports,
/// writes the config, runs the cluster, and cleans the temp file up.
///
/// # Errors
///
/// See [`run_cluster`]; config-write failures surface as a spawn error on
/// node 0.
pub fn run_local_cluster(
    n: usize,
    tag: &str,
    mutate: impl FnOnce(&mut ClusterRunSpec),
) -> Result<ClusterOutcome, ClusterError> {
    let cfg = reserve_localhost_config(n);
    let path = write_temp_config(&cfg, tag)
        .map_err(|e| ClusterError::Spawn { id: 0, why: e.to_string() })?;
    let mut spec = ClusterRunSpec::new(path.clone());
    mutate(&mut spec);
    let result = run_cluster(&spec);
    let _ = std::fs::remove_file(&path);
    result
}

/// The ε the generated localhost runs target (the paper's oracle preset).
pub const LOCAL_EPSILON: f64 = 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_config_has_distinct_free_ports() {
        let cfg = reserve_localhost_config(4);
        let mut ports: Vec<u16> = cfg.nodes.iter().map(|n| n.address.port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4, "ports must be distinct");
        assert!(ports.iter().all(|p| *p != 0));
    }

    #[test]
    fn temp_config_roundtrips_through_disk() {
        let cfg = reserve_localhost_config(3);
        let path = write_temp_config(&cfg, "unit").unwrap();
        let loaded = ClusterConfig::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, cfg);
    }

    #[test]
    fn missing_node_binary_is_reported() {
        let cfg = reserve_localhost_config(2);
        let path = write_temp_config(&cfg, "nobin").unwrap();
        let mut spec = ClusterRunSpec::new(path.clone());
        spec.node_binary = Some(PathBuf::from("/definitely/not/delphi-node"));
        let err = run_cluster(&spec).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, ClusterError::Spawn { .. }), "{err}");
    }
}
