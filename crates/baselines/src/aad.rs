//! Abraham–Amit–Dolev asynchronous approximate agreement (the paper's
//! [1]) — the state-of-the-art AA baseline of Fig. 6.
//!
//! Round structure, per the witness technique:
//!
//! 1. every node reliably broadcasts its round-`r` value (`n` parallel
//!    RBCs — `O(n³)` messages per round, the §III-A bottleneck);
//! 2. after delivering `n − t` values it broadcasts a **witness**: the id
//!    set it delivered;
//! 3. a witness is *satisfied* once all its ids have been delivered
//!    locally; after `n − t` satisfied witnesses, any two honest nodes
//!    share at least `n − t ≥ 2t + 1` delivered values;
//! 4. the node updates its value to the midpoint of its delivered values
//!    after trimming the `t` lowest and `t` highest, which halves the
//!    honest range per round;
//! 5. after `R = ⌈log2(δ_max/ε)⌉` rounds the value is the output.

use bytes::Bytes;
use delphi_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use delphi_primitives::{Envelope, NodeId, Protocol};

use crate::rbc::{RbcInstance, RbcMsg};

/// Safety cap on configured rounds.
pub const MAX_AAD_ROUNDS: u16 = 64;

/// An AAD wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum AadMsg {
    /// RBC traffic for `broadcaster`'s round-`round` value.
    Rbc {
        /// AAD round the broadcast belongs to (1-based).
        round: u16,
        /// Whose value is being broadcast.
        broadcaster: NodeId,
        /// The RBC message body.
        inner: RbcMsg,
    },
    /// The sender's delivered-id set for `round`.
    Witness {
        /// AAD round the witness reports on.
        round: u16,
        /// Ids the sender has delivered for that round.
        ids: Vec<u16>,
    },
}

impl Encode for AadMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            AadMsg::Rbc { round, broadcaster, inner } => {
                w.put_raw_u8(0);
                w.put_u16(*round);
                w.put(broadcaster);
                w.put(inner);
            }
            AadMsg::Witness { round, ids } => {
                w.put_raw_u8(1);
                w.put_u16(*round);
                w.put_seq(ids);
            }
        }
    }
}

impl Decode for AadMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_raw_u8()? {
            0 => Ok(AadMsg::Rbc { round: r.get_u16()?, broadcaster: r.get()?, inner: r.get()? }),
            1 => Ok(AadMsg::Witness { round: r.get_u16()?, ids: r.get_seq(1024)? }),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }
}

#[derive(Debug)]
struct AadRoundState {
    rbcs: Vec<RbcInstance>,
    values: Vec<Option<f64>>,
    /// Whether each sender's witness has been registered (first wins).
    witness_seen: Vec<bool>,
    /// Undelivered ids remaining per registered witness.
    witness_missing: Vec<usize>,
    /// Reverse index: broadcaster id → witness senders waiting on it.
    waiting_on: Vec<Vec<u16>>,
    /// Broadcasts delivered in this round (count drives the witness rule).
    delivered_count: usize,
    /// Witnesses whose id sets are fully delivered locally.
    satisfied: usize,
    witness_sent: bool,
    broadcast_started: bool,
}

impl AadRoundState {
    fn new(me: NodeId, n: usize, t: usize) -> AadRoundState {
        AadRoundState {
            rbcs: NodeId::all(n).map(|b| RbcInstance::new(me, n, t, b)).collect(),
            values: vec![None; n],
            witness_seen: vec![false; n],
            witness_missing: vec![0; n],
            waiting_on: vec![Vec::new(); n],
            delivered_count: 0,
            satisfied: 0,
            witness_sent: false,
            broadcast_started: false,
        }
    }

    /// Records that broadcaster `j`'s RBC delivered, updating witness
    /// satisfaction incrementally (O(waiters), amortized O(1)).
    ///
    /// Callers invoke this exactly once per delivered broadcaster.
    fn on_delivered(&mut self, j: usize, payload: &Bytes) {
        self.delivered_count += 1;
        self.values[j] = AadNode::decode_value(payload);
        for w in std::mem::take(&mut self.waiting_on[j]) {
            let missing = &mut self.witness_missing[usize::from(w)];
            *missing -= 1;
            if *missing == 0 {
                self.satisfied += 1;
            }
        }
    }

    /// Registers a witness id set from `from` (first one wins).
    fn on_witness(&mut self, from: NodeId, ids: &[u16], n: usize) {
        if self.witness_seen[from.index()] {
            return;
        }
        self.witness_seen[from.index()] = true;
        let mut missing = 0;
        for &j in ids {
            let j_us = usize::from(j);
            if j_us >= n {
                continue;
            }
            if self.rbcs[j_us].delivered().is_none() {
                missing += 1;
                self.waiting_on[j_us].push(from.0);
            }
        }
        self.witness_missing[from.index()] = missing;
        if missing == 0 {
            self.satisfied += 1;
        }
    }
}

/// An Abraham et al. approximate-agreement node.
///
/// # Example
///
/// ```
/// use delphi_baselines::AadNode;
/// use delphi_primitives::{NodeId, Protocol};
/// use delphi_sim::{Simulation, Topology};
///
/// let n = 4;
/// let inputs = [10.0, 10.4, 10.8, 11.0];
/// // R = 6 rounds halve the range to ≤ (11 − 10) / 2^6.
/// let nodes = NodeId::all(n)
///     .map(|id| AadNode::new(id, n, 1, inputs[id.index()], 6).boxed())
///     .collect();
/// let report = Simulation::new(Topology::lan(n)).seed(5).run(nodes);
/// let outs: Vec<f64> = report.honest_outputs().copied().collect();
/// for pair in outs.windows(2) {
///     assert!((pair[0] - pair[1]).abs() <= 1.0 / 64.0 + 1e-12);
/// }
/// ```
#[derive(Debug)]
pub struct AadNode {
    me: NodeId,
    n: usize,
    t: usize,
    total_rounds: u16,
    value: f64,
    round: u16,
    rounds: Vec<AadRoundState>,
    output: Option<f64>,
}

impl AadNode {
    /// Creates a node with input `value` running `rounds` rounds
    /// (use `⌈log2(δ_max/ε)⌉` for ε-agreement).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1`, `me` is out of range, or
    /// `rounds ∉ 1..=`[`MAX_AAD_ROUNDS`].
    pub fn new(me: NodeId, n: usize, t: usize, value: f64, rounds: u16) -> AadNode {
        assert!(n > 3 * t, "AAD requires n >= 3t + 1");
        assert!(me.index() < n, "node id out of range");
        assert!((1..=MAX_AAD_ROUNDS).contains(&rounds), "rounds must be in 1..={MAX_AAD_ROUNDS}");
        let value = if value.is_finite() { value } else { 0.0 };
        AadNode {
            me,
            n,
            t,
            total_rounds: rounds,
            value,
            round: 1,
            rounds: Vec::new(),
            output: None,
        }
    }

    /// Boxes the node for use with heterogeneous drivers.
    pub fn boxed(self) -> Box<dyn Protocol<Output = f64>> {
        Box::new(self)
    }

    fn round_mut(&mut self, round: u16) -> &mut AadRoundState {
        let idx = usize::from(round) - 1;
        while self.rounds.len() <= idx {
            self.rounds.push(AadRoundState::new(self.me, self.n, self.t));
        }
        &mut self.rounds[idx]
    }

    fn decode_value(payload: &Bytes) -> Option<f64> {
        f64::from_bytes(payload).ok().filter(|v| v.is_finite())
    }

    /// Absorbs a possible fresh delivery for broadcaster `b`
    /// (`was_delivered` is the pre-call state, so this fires exactly once).
    fn absorb_delivery(st: &mut AadRoundState, b: usize, was_delivered: bool) {
        if !was_delivered {
            if let Some(p) = st.rbcs[b].delivered().cloned() {
                st.on_delivered(b, &p);
            }
        }
    }

    /// Runs broadcasts → witnesses → round advancement to quiescence.
    /// All checks are O(1) thanks to the incremental witness accounting
    /// in [`AadRoundState`]; only the once-per-round witness-id snapshot
    /// and trimmed-midpoint update are O(n) / O(n log n).
    fn progress(&mut self, out: &mut Vec<AadMsg>) {
        loop {
            if self.output.is_some() {
                return;
            }
            let round = self.round;
            let me = self.me;
            let (n, t) = (self.n, self.t);

            // Kick off our broadcast for the current round.
            let value = self.value;
            let st = self.round_mut(round);
            if !st.broadcast_started {
                st.broadcast_started = true;
                let mut w = Writer::new();
                w.put_f64(value);
                let was = st.rbcs[me.index()].delivered().is_some();
                let actions = st.rbcs[me.index()].broadcast(w.into_bytes());
                Self::absorb_delivery(st, me.index(), was);
                out.extend(actions.into_iter().map(|inner| AadMsg::Rbc {
                    round,
                    broadcaster: me,
                    inner,
                }));
            }

            // Witness after n − t deliveries.
            if !st.witness_sent && st.delivered_count >= n - t {
                st.witness_sent = true;
                let ids: Vec<u16> = (0..n as u16)
                    .filter(|&j| st.rbcs[usize::from(j)].delivered().is_some())
                    .collect();
                st.on_witness(me, &ids, n);
                out.push(AadMsg::Witness { round, ids });
            }

            // Advance on n − t satisfied witnesses.
            if st.witness_sent && st.satisfied >= n - t {
                // Trimmed-midpoint update over the decodable values.
                let mut vals: Vec<f64> = st.values.iter().flatten().copied().collect();
                vals.sort_by(f64::total_cmp);
                if vals.len() > 2 * t {
                    let kept = &vals[t..vals.len() - t];
                    self.value = (kept[0] + kept[kept.len() - 1]) / 2.0;
                }
                self.round += 1;
                if self.round > self.total_rounds {
                    self.output = Some(self.value);
                }
                continue;
            }
            return;
        }
    }

    fn envelopes(msgs: Vec<AadMsg>) -> Vec<Envelope> {
        msgs.into_iter().map(|m| Envelope::to_all(m.to_bytes())).collect()
    }
}

impl Protocol for AadNode {
    type Output = f64;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn start(&mut self) -> Vec<Envelope> {
        let mut out = Vec::new();
        self.progress(&mut out);
        Self::envelopes(out)
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        if from.index() >= self.n {
            return Vec::new();
        }
        let Ok(msg) = AadMsg::from_bytes(payload) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        match msg {
            AadMsg::Rbc { round, broadcaster, inner } => {
                if round < 1 || round > self.total_rounds || broadcaster.index() >= self.n {
                    return Vec::new();
                }
                let b = broadcaster.index();
                let st = self.round_mut(round);
                let was = st.rbcs[b].delivered().is_some();
                let actions = st.rbcs[b].on_message(from, &inner);
                Self::absorb_delivery(st, b, was);
                out.extend(actions.into_iter().map(|inner| AadMsg::Rbc {
                    round,
                    broadcaster,
                    inner,
                }));
            }
            AadMsg::Witness { round, ids } => {
                if round < 1 || round > self.total_rounds || ids.len() > self.n {
                    return Vec::new();
                }
                let n = self.n;
                let st = self.round_mut(round);
                st.on_witness(from, &ids, n);
            }
        }
        self.progress(&mut out);
        Self::envelopes(out)
    }

    fn output(&self) -> Option<f64> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::wire::roundtrip;
    use delphi_sim::adversary::Crash;
    use delphi_sim::{Simulation, Topology};
    use proptest::prelude::*;

    #[test]
    fn msg_roundtrip() {
        let m = AadMsg::Rbc {
            round: 2,
            broadcaster: NodeId(1),
            inner: RbcMsg::Ready(Bytes::from_static(b"v")),
        };
        assert_eq!(roundtrip(&m).unwrap(), m);
        let m = AadMsg::Witness { round: 3, ids: vec![0, 1, 2] };
        assert_eq!(roundtrip(&m).unwrap(), m);
    }

    fn run_aad(
        n: usize,
        t: usize,
        inputs: &[f64],
        rounds: u16,
        faulty: &[usize],
        seed: u64,
    ) -> Vec<f64> {
        let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
            .map(|id| {
                if faulty.contains(&id.index()) {
                    Box::new(Crash::new(id, n)) as Box<dyn Protocol<Output = f64>>
                } else {
                    AadNode::new(id, n, t, inputs[id.index()], rounds).boxed()
                }
            })
            .collect();
        let faulty_ids: Vec<NodeId> = faulty.iter().map(|&i| NodeId(i as u16)).collect();
        let report = Simulation::new(Topology::lan(n)).seed(seed).faulty(&faulty_ids).run(nodes);
        assert!(report.all_honest_finished(), "AAD stalled: {:?} seed {seed}", report.stop);
        report.honest_outputs().copied().collect()
    }

    fn assert_hull(outs: &[f64], inputs: &[f64]) {
        let lo = inputs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for o in outs {
            assert!(*o >= lo - 1e-9 && *o <= hi + 1e-9, "output {o} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn converges_within_epsilon() {
        let inputs = [0.0, 1.0, 2.0, 4.0];
        // δ = 4; 7 rounds halve to 4/128 < 0.05.
        let outs = run_aad(4, 1, &inputs, 7, &[], 1);
        assert_hull(&outs, &inputs);
        for a in &outs {
            for b in &outs {
                assert!((a - b).abs() <= 4.0 / 128.0 + 1e-9, "|{a} - {b}|");
            }
        }
    }

    #[test]
    fn identical_inputs_fixed_point() {
        let outs = run_aad(4, 1, &[7.5; 4], 4, &[], 2);
        for o in outs {
            assert!((o - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn tolerates_crash() {
        let inputs = [1.0, 2.0, 3.0, 999.0];
        let outs = run_aad(4, 1, &inputs, 6, &[3], 3);
        assert_eq!(outs.len(), 3);
        assert_hull(&outs, &inputs[..3]);
    }

    #[test]
    fn byzantine_value_is_trimmed() {
        // A Byzantine node runs the protocol honestly but with an extreme
        // input; trimming keeps honest outputs near the honest cluster.
        for seed in 0..5 {
            let n = 4;
            let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
                .map(|id| {
                    let v = if id.index() == 3 { 1e9 } else { 50.0 + id.index() as f64 };
                    AadNode::new(id, n, 1, v, 6).boxed()
                })
                .collect();
            let report =
                Simulation::new(Topology::lan(n)).seed(seed).faulty(&[NodeId(3)]).run(nodes);
            assert!(report.all_honest_finished());
            for o in report.honest_outputs() {
                assert!(
                    (50.0 - 1e-9..=52.0 + 1e-9).contains(o),
                    "seed {seed}: Byzantine input dragged output to {o}"
                );
            }
        }
    }

    #[test]
    fn seven_nodes_converge() {
        let inputs = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0];
        let outs = run_aad(7, 2, &inputs, 8, &[], 4);
        assert_hull(&outs, &inputs);
        for a in &outs {
            for b in &outs {
                assert!((a - b).abs() <= 6.0 / 256.0 + 1e-9);
            }
        }
    }

    #[test]
    fn rejects_bad_construction() {
        let node = AadNode::new(NodeId(0), 4, 1, f64::NAN, 4);
        assert_eq!(node.value, 0.0, "non-finite inputs sanitized");
    }

    #[test]
    #[should_panic(expected = "rounds")]
    fn zero_rounds_rejected() {
        let _ = AadNode::new(NodeId(0), 4, 1, 1.0, 0);
    }

    #[test]
    fn malformed_messages_ignored() {
        let mut node = AadNode::new(NodeId(0), 4, 1, 1.0, 4);
        let _ = node.start();
        assert!(node.on_message(NodeId(1), b"xx").is_empty());
        let bad = AadMsg::Witness { round: 99, ids: vec![1] };
        assert!(node.on_message(NodeId(1), &bad.to_bytes()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_hull_validity_and_agreement(
            n in 4usize..8,
            vals in proptest::collection::vec(-100.0..100.0f64, 8),
            seed in 0u64..u64::MAX,
        ) {
            let t = (n - 1) / 3;
            let rounds = 9u16;
            let outs = run_aad(n, t, &vals[..n], rounds, &[], seed);
            let lo = vals[..n].iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let tol = (hi - lo) / 2f64.powi(i32::from(rounds)) + 1e-9;
            for a in &outs {
                prop_assert!(*a >= lo - 1e-9 && *a <= hi + 1e-9);
                for b in &outs {
                    prop_assert!((a - b).abs() <= tol, "|{} - {}| > {}", a, b, tol);
                }
            }
        }
    }
}
