//! Tokio TCP runtime for Delphi protocol state machines.
//!
//! The paper's artifact runs on tokio over HMAC-authenticated channels
//! (§VI-C); this crate is that deployment path. The same sans-io
//! [`Protocol`](delphi_primitives::Protocol) state machines that run under
//! the simulator run here over real sockets:
//!
//! - [`frame`]: length-prefixed frames with an HMAC-SHA256 tag under the
//!   pairwise channel key — the authenticated-channel assumption made
//!   concrete. Two formats share the tag: v1 carries one payload, v2
//!   carries a batch of `(instance, payload)` entries so one tag
//!   authenticates a whole protocol step. Tampered or misdirected frames
//!   are dropped, never surfaced to the protocol.
//! - [`run_node`] / [`run_instances`]: full-mesh node runners — bind a
//!   listener, dial every peer (with retry), drive one or many multiplexed
//!   protocol instances to their outputs, linger briefly so slower peers
//!   still receive our help messages, and drain writer queues before
//!   returning. [`run_instances`] coalesces every envelope of one protocol
//!   step into one batched frame per destination.
//!
//! # Example
//!
//! See `examples/tcp_cluster.rs` at the workspace root, which runs a
//! Delphi cluster over localhost TCP. The loopback integration test in
//! this crate does the same with 4 BinAA nodes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod runner;

pub use frame::{
    decode_any_frame, decode_frame, encode_batch_frame, encode_frame, FrameError, BATCH_MARKER,
    MAX_FRAME_BODY, MAX_FRAME_PAYLOAD, MIN_FRAME_BODY,
};
pub use runner::{run_instances, run_node, NetError, NetStats, RunOptions};
