//! The weighted aggregation of Algorithm 2 (lines 14–24), as pure math.
//!
//! Separating this from the protocol machinery lets the paper's analytical
//! claims (Theorem IV.1's `Σ w′ ≥ w²_{l_M}/2` bound, Lemma IV.2's
//! level-weight cancellation) be unit-tested directly on numbers.

/// A level's representative value `V_l` and weight `w_l`
/// (Algorithm 2 line 18 / line 20).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelSummary {
    /// Weighted average of the level's checkpoints, or the node's own
    /// input for a weightless level.
    pub value: f64,
    /// Maximum checkpoint weight in the level, or `ε′` for a weightless
    /// level.
    pub weight: f64,
}

/// Aggregates one level's checkpoint weights (Algorithm 2 lines 14–20).
///
/// `checkpoints` pairs each checkpoint's represented value `µ^l_k` with its
/// agreed weight `w^l_k`. If every weight is zero the weighted average is
/// undefined and the algorithm substitutes `(v_i, ε′)` — the caller's own
/// input with a floor weight.
///
/// # Example
///
/// ```
/// use delphi_core::aggregate::level_summary;
///
/// // Two checkpoints at 30 and 40 with weights 1 and 1: average 35.
/// let s = level_summary(&[(30.0, 1.0), (40.0, 1.0)], 33.0, 1e-7);
/// assert_eq!(s.value, 35.0);
/// assert_eq!(s.weight, 1.0);
///
/// // All-zero weights: fall back to own input with floor weight ε′.
/// let s = level_summary(&[(30.0, 0.0)], 33.0, 1e-7);
/// assert_eq!(s.value, 33.0);
/// assert_eq!(s.weight, 1e-7);
/// ```
pub fn level_summary(checkpoints: &[(f64, f64)], own_input: f64, eps_prime: f64) -> LevelSummary {
    let total: f64 = checkpoints.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return LevelSummary { value: own_input, weight: eps_prime };
    }
    let weighted: f64 = checkpoints.iter().map(|(mu, w)| mu * w).sum();
    let max_w = checkpoints.iter().map(|(_, w)| *w).fold(0.0, f64::max);
    LevelSummary { value: weighted / total, weight: max_w }
}

/// Combines per-level summaries into the final output (Algorithm 2 lines
/// 21–24): `w′_0 = w_0²`, `w′_l = w_l · |w_l − w_{l−1}|`, output
/// `Σ w′_l V_l / Σ w′_l`.
///
/// The differentiation `|w_l − w_{l−1}|` zeroes the contribution of every
/// level above the first fully-covering one (where `w_l = w_{l−1} = 1`),
/// which is what keeps coarse levels from relaxing validity (Fig. 3).
///
/// # Panics
///
/// Panics if `levels` is empty.
pub fn combine_levels(levels: &[LevelSummary]) -> f64 {
    assert!(!levels.is_empty(), "at least one level required");
    let mut num = 0.0;
    let mut den = 0.0;
    let mut prev_w = None::<f64>;
    for l in levels {
        let w_prime = match prev_w {
            None => l.weight * l.weight,
            Some(p) => l.weight * (l.weight - p).abs(),
        };
        num += w_prime * l.value;
        den += w_prime;
        prev_w = Some(l.weight);
    }
    if den <= 0.0 {
        // Only reachable if every level weight is exactly 0, which the
        // ε′ fallback rules out; kept as a defensive fallback.
        return levels[0].value;
    }
    num / den
}

/// Theorem IV.1's lower bound on the sum of cross-level weights:
/// `Σ w′ ≥ w²_{l_M} / 2`. Exposed for tests and the analysis benches.
pub fn weight_sum_lower_bound(levels: &[LevelSummary]) -> f64 {
    levels.last().map_or(0.0, |l| l.weight * l.weight / 2.0)
}

/// The actual `Σ w′_l` for a set of level summaries.
pub fn weight_sum(levels: &[LevelSummary]) -> f64 {
    let mut den = 0.0;
    let mut prev_w = None::<f64>;
    for l in levels {
        let w_prime = match prev_w {
            None => l.weight * l.weight,
            Some(p) => l.weight * (l.weight - p).abs(),
        };
        den += w_prime;
        prev_w = Some(l.weight);
    }
    den
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_full_weight_checkpoint_dominates() {
        let s = level_summary(&[(10.0, 0.0), (20.0, 1.0), (30.0, 0.0)], 99.0, 1e-6);
        assert_eq!(s.value, 20.0);
        assert_eq!(s.weight, 1.0);
    }

    #[test]
    fn fractional_weights_average() {
        let s = level_summary(&[(0.0, 0.25), (100.0, 0.75)], 0.0, 1e-6);
        assert_eq!(s.value, 75.0);
        assert_eq!(s.weight, 0.75);
    }

    #[test]
    fn combine_kills_levels_above_phi() {
        // Levels 0,1 have zero-ish weight; levels 2..4 all have weight 1
        // (the Fig. 3 situation). Only level 2 may contribute.
        let eps = 1e-7;
        let levels = [
            LevelSummary { value: 10.0, weight: eps },
            LevelSummary { value: 11.0, weight: eps },
            LevelSummary { value: 12.0, weight: 1.0 },
            LevelSummary { value: 500.0, weight: 1.0 },
            LevelSummary { value: 900.0, weight: 1.0 },
        ];
        let out = combine_levels(&levels);
        // w'_3 = w'_4 = 0 exactly; contributions of 500/900 vanish.
        assert!((out - 12.0).abs() < 1e-4, "out = {out}");
    }

    #[test]
    fn combine_single_level() {
        let levels = [LevelSummary { value: 42.0, weight: 1.0 }];
        assert_eq!(combine_levels(&levels), 42.0);
    }

    #[test]
    fn termination_bound_holds() {
        let eps = 1e-7;
        let levels = [
            LevelSummary { value: 1.0, weight: eps },
            LevelSummary { value: 2.0, weight: 0.5 },
            LevelSummary { value: 3.0, weight: 1.0 },
        ];
        assert!(weight_sum(&levels) >= weight_sum_lower_bound(&levels));
        assert!(weight_sum_lower_bound(&levels) == 0.5);
    }

    #[test]
    fn all_zero_weights_fall_back() {
        let s = level_summary(&[], 7.0, 1e-7);
        assert_eq!(s.value, 7.0);
        assert_eq!(s.weight, 1e-7);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn combine_empty_panics() {
        let _ = combine_levels(&[]);
    }

    proptest! {
        /// Output lies in the convex hull of level values (the weighted
        /// average can never escape its inputs).
        #[test]
        fn prop_output_within_level_hull(
            values in proptest::collection::vec((0.0..1000.0f64, 0.0..=1.0f64), 1..12),
        ) {
            let levels: Vec<LevelSummary> = values
                .iter()
                .map(|&(value, weight)| LevelSummary { value, weight: weight.max(1e-9) })
                .collect();
            let out = combine_levels(&levels);
            let lo = levels.iter().map(|l| l.value).fold(f64::INFINITY, f64::min);
            let hi = levels.iter().map(|l| l.value).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9, "{out} not in [{lo}, {hi}]");
        }

        /// Theorem IV.1: Σ w′ ≥ w²_{l_M}/2 for any weight profile.
        #[test]
        fn prop_weight_sum_lower_bound(
            weights in proptest::collection::vec(0.0..=1.0f64, 1..12),
        ) {
            let levels: Vec<LevelSummary> = weights
                .iter()
                .map(|&weight| LevelSummary { value: 0.0, weight })
                .collect();
            prop_assert!(
                weight_sum(&levels) >= weight_sum_lower_bound(&levels) - 1e-12,
                "sum {} < bound {}",
                weight_sum(&levels),
                weight_sum_lower_bound(&levels)
            );
        }

        /// Level summaries stay within the checkpoint hull.
        #[test]
        fn prop_level_summary_within_hull(
            cps in proptest::collection::vec((-100.0..100.0f64, 0.0..=1.0f64), 1..20),
        ) {
            let s = level_summary(&cps, 0.0, 1e-7);
            if cps.iter().any(|&(_, w)| w > 0.0) {
                let lo = cps.iter().filter(|&&(_, w)| w > 0.0).map(|&(mu, _)| mu).fold(f64::INFINITY, f64::min);
                let hi = cps.iter().filter(|&&(_, w)| w > 0.0).map(|&(mu, _)| mu).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(s.value >= lo - 1e-9 && s.value <= hi + 1e-9);
            } else {
                prop_assert_eq!(s.value, 0.0);
            }
        }
    }
}
