//! Integration: the sharded multi-asset oracle scenario.
//!
//! A DORA-style deployment agrees on a whole basket of assets each minute.
//! These tests drive one simulated minute of the default basket two ways —
//! independent per-asset simulations sharded across worker threads, and
//! all assets multiplexed over one mesh with batched envelopes — and check
//! that every asset reaches ε-agreement while batching strictly cuts
//! transport cost.

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::{Mux, NodeId, Protocol};
use delphi::sim::{run_sharded, BatchSavings, RunReport, SimJob, Simulation, Topology};
use delphi::workloads::{AssetMinute, MultiAssetConfig, MultiAssetFeed};

fn oracle_cfg(n: usize) -> DelphiConfig {
    DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(10.0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()
        .expect("valid oracle parameters")
}

fn basket_minute(n: usize, seed: u64) -> Vec<AssetMinute> {
    MultiAssetFeed::new(MultiAssetConfig::default_basket(), seed).next_minute(n)
}

fn spread(outs: &[f64]) -> f64 {
    outs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - outs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn assert_asset_agreement(report: &RunReport<f64>, asset: &AssetMinute, cfg: &DelphiConfig) {
    assert!(report.all_honest_finished(), "{} stalled: {:?}", asset.name, report.stop);
    let outs: Vec<f64> = report.honest_outputs().copied().collect();
    assert!(
        spread(&outs) <= cfg.epsilon() + 1e-9,
        "{}: ε-agreement violated, spread {}",
        asset.name,
        spread(&outs)
    );
    let lo = asset.inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = asset.inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let relax = cfg.rho0().max(hi - lo);
    for o in &outs {
        assert!(
            *o >= lo - relax && *o <= hi + relax,
            "{}: output {o} outside relaxed hull [{lo}, {hi}] ± {relax}",
            asset.name
        );
    }
}

#[test]
fn sharded_minute_reaches_per_asset_agreement_on_every_asset() {
    let n = 8;
    let cfg = oracle_cfg(n);
    let minute = basket_minute(n, 42);

    let jobs: Vec<SimJob<f64>> = minute
        .iter()
        .enumerate()
        .map(|(a, asset)| {
            let cfg = cfg.clone();
            let inputs = asset.inputs.clone();
            SimJob::new(Simulation::new(Topology::aws_geo(n)).seed(100 + a as u64), move || {
                NodeId::all(n)
                    .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
                    .collect()
            })
        })
        .collect();
    let reports = run_sharded(jobs, 4);

    assert_eq!(reports.len(), minute.len());
    for (report, asset) in reports.iter().zip(&minute) {
        assert_asset_agreement(report, asset, &cfg);
    }
}

#[test]
fn shard_count_does_not_change_results() {
    let n = 6;
    let cfg = oracle_cfg(n);
    let minute = basket_minute(n, 7);
    let run = |shards: usize| {
        let jobs: Vec<SimJob<f64>> = minute
            .iter()
            .enumerate()
            .map(|(a, asset)| {
                let cfg = cfg.clone();
                let inputs = asset.inputs.clone();
                SimJob::new(Simulation::new(Topology::lan(n)).seed(a as u64), move || {
                    NodeId::all(n)
                        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
                        .collect()
                })
            })
            .collect();
        run_sharded(jobs, shards)
    };
    let solo = run(1);
    let wide = run(8);
    for (a, b) in solo.iter().zip(&wide) {
        assert_eq!(a.completion_ns(), b.completion_ns());
        assert_eq!(a.metrics.total_wire_bytes(), b.metrics.total_wire_bytes());
        assert_eq!(
            a.honest_outputs().copied().collect::<Vec<f64>>(),
            b.honest_outputs().copied().collect::<Vec<f64>>()
        );
    }
}

#[test]
fn multiplexed_basket_cuts_frames_and_bytes_vs_per_asset_meshes() {
    let n = 6;
    let cfg = oracle_cfg(n);
    let minute = basket_minute(n, 11);

    // Unbatched: one mesh (simulation) per asset.
    let jobs: Vec<SimJob<f64>> = minute
        .iter()
        .enumerate()
        .map(|(a, asset)| {
            let cfg = cfg.clone();
            let inputs = asset.inputs.clone();
            SimJob::new(Simulation::new(Topology::lan(n)).seed(200 + a as u64), move || {
                NodeId::all(n)
                    .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
                    .collect()
            })
        })
        .collect();
    let unbatched = run_sharded(jobs, 4);
    for (report, asset) in unbatched.iter().zip(&minute) {
        assert_asset_agreement(report, asset, &cfg);
    }

    // Batched: the whole basket multiplexed over one mesh; every protocol
    // step's envelopes share one message per destination.
    let mux_nodes: Vec<Box<dyn Protocol<Output = Vec<f64>>>> = NodeId::all(n)
        .map(|id| {
            let instances: Vec<DelphiNode> = minute
                .iter()
                .map(|asset| DelphiNode::new(cfg.clone(), id, asset.inputs[id.index()]))
                .collect();
            Box::new(Mux::new(instances)) as Box<dyn Protocol<Output = Vec<f64>>>
        })
        .collect();
    let batched = Simulation::new(Topology::lan(n)).seed(200).run(mux_nodes);
    assert!(batched.all_honest_finished(), "batched basket stalled: {:?}", batched.stop);
    for (a, asset) in minute.iter().enumerate() {
        let outs: Vec<f64> = batched.honest_outputs().map(|v| v[a]).collect();
        assert!(
            spread(&outs) <= cfg.epsilon() + 1e-9,
            "{} (batched): spread {}",
            asset.name,
            spread(&outs)
        );
    }

    let savings = BatchSavings::compare(unbatched.iter().map(|r| &r.metrics), &batched.metrics);
    assert!(
        savings.batched_msgs < savings.unbatched_msgs,
        "batching must cut message count: {savings}"
    );
    assert!(
        savings.batched_wire_bytes < savings.unbatched_wire_bytes,
        "batching must cut wire bytes: {savings}"
    );
}
