//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset it uses: [`Rng::random`], [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a deterministic,
//! high-quality, non-cryptographic generator. The workspace only ever seeds
//! it explicitly (`seed_from_u64`) for reproducible simulations, so the lack
//! of OS entropy is not a limitation.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types seedable from a `u64` (the only seeding mode this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator with a state deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a "standard" distribution, for [`Rng::random`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not cryptographically secure (neither is the real `StdRng` guaranteed
    /// to keep one algorithm across versions); every use in this workspace is
    /// an explicitly seeded simulation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.random_range(0..=255);
            let _ = w; // full domain: the assert is that it did not panic
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let s = rng.random_range(0..7usize);
            assert!(s < 7);
        }
    }

    #[test]
    fn all_int_range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5u32);
    }
}
