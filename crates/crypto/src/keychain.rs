//! Pairwise symmetric keys and message authentication.
//!
//! The paper's system model assumes "pairwise authenticated channels". A
//! real deployment provisions a shared symmetric key per node pair; here a
//! [`Keychain`] derives the whole matrix from one deployment seed so test
//! clusters and examples need a single secret. Key derivation is
//! `HMAC(seed, "delphi-channel" || min(i,j) || max(i,j))`, so both
//! endpoints derive the same key and no pair shares a key with any other
//! pair.

use std::error::Error;
use std::fmt;

use delphi_primitives::NodeId;

use crate::hmac::{ct_eq, HmacKey};
use crate::sha256::DIGEST_LEN;

/// Length of a channel MAC tag in bytes (full SHA-256 width).
pub const TAG_LEN: usize = DIGEST_LEN;

/// Shared symmetric key for one unordered node pair.
///
/// The key holds its HMAC inner/outer padded states precomputed
/// ([`HmacKey`]), so tagging a frame costs two SHA-256 compressions instead
/// of four — channel keys live for a whole deployment while every frame on
/// the mesh pays the tag.
#[derive(Clone)]
pub struct ChannelKey {
    raw: [u8; DIGEST_LEN],
    mac_key: HmacKey,
}

impl ChannelKey {
    fn new(raw: [u8; DIGEST_LEN]) -> ChannelKey {
        let mac_key = HmacKey::new(&raw);
        ChannelKey { raw, mac_key }
    }

    /// Computes the MAC tag for `message` under this key.
    pub fn tag(&self, message: &[u8]) -> [u8; TAG_LEN] {
        self.tag_segments(&[message])
    }

    /// Computes the tag for a message provided in segments (avoids
    /// concatenation in the transport hot path).
    pub fn tag_segments(&self, segments: &[&[u8]]) -> [u8; TAG_LEN] {
        let mut mac = self.mac_key.mac();
        for segment in segments {
            mac.update(segment);
        }
        mac.finalize()
    }

    /// Verifies `tag` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`MacError`] if the tag does not verify.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> Result<(), MacError> {
        if ct_eq(&self.tag(message), tag) {
            Ok(())
        } else {
            Err(MacError)
        }
    }
}

impl PartialEq for ChannelKey {
    fn eq(&self, other: &Self) -> bool {
        // The precomputed MAC states are a pure function of the raw key.
        self.raw == other.raw
    }
}

impl Eq for ChannelKey {}

impl fmt::Debug for ChannelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "ChannelKey(..)")
    }
}

/// Authentication failure: the MAC tag did not verify.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacError;

impl fmt::Display for MacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message authentication failed")
    }
}

impl Error for MacError {}

/// One node's view of the pairwise key matrix.
///
/// # Example
///
/// ```
/// use delphi_crypto::Keychain;
/// use delphi_primitives::NodeId;
///
/// let alice = Keychain::derive(b"deployment-seed", NodeId(0), 4);
/// let bob = Keychain::derive(b"deployment-seed", NodeId(1), 4);
///
/// let tag = alice.channel(NodeId(1)).tag(b"hello");
/// assert!(bob.channel(NodeId(0)).verify(b"hello", &tag).is_ok());
/// assert!(bob.channel(NodeId(2)).verify(b"hello", &tag).is_err());
/// ```
#[derive(Clone)]
pub struct Keychain {
    me: NodeId,
    keys: Vec<ChannelKey>,
}

impl Keychain {
    /// Derives node `me`'s keys for an `n`-node deployment from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a valid id for an `n`-node system.
    pub fn derive(seed: &[u8], me: NodeId, n: usize) -> Keychain {
        assert!(me.index() < n, "node id {me} out of range for n={n}");
        // Expand the seed's padded-key states once, absorb the constant
        // domain-separation label once, and clone that single prefix state
        // per peer: each of the n derivations then only absorbs its 4
        // id bytes before finalizing, instead of re-buffering the label.
        let seed_key = HmacKey::new(seed);
        let mut prefix = seed_key.mac();
        prefix.update(b"delphi-channel");
        let keys = (0..n as u16)
            .map(|peer| {
                let (lo, hi) = if me.0 <= peer { (me.0, peer) } else { (peer, me.0) };
                let mut ids = [0u8; 4];
                ids[..2].copy_from_slice(&lo.to_be_bytes());
                ids[2..].copy_from_slice(&hi.to_be_bytes());
                let mut mac = prefix.clone();
                mac.update(&ids);
                ChannelKey::new(mac.finalize())
            })
            .collect();
        Keychain { me, keys }
    }

    /// This node's identity.
    pub fn node_id(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the deployment.
    pub fn n(&self) -> usize {
        self.keys.len()
    }

    /// The shared key for the channel between this node and `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    pub fn channel(&self, peer: NodeId) -> &ChannelKey {
        &self.keys[peer.index()]
    }
}

impl fmt::Debug for Keychain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keychain").field("me", &self.me).field("n", &self.keys.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_symmetry() {
        let a = Keychain::derive(b"seed", NodeId(0), 4);
        let b = Keychain::derive(b"seed", NodeId(3), 4);
        assert_eq!(a.channel(NodeId(3)), b.channel(NodeId(0)));
        assert_eq!(a.n(), 4);
        assert_eq!(a.node_id(), NodeId(0));
    }

    #[test]
    fn distinct_pairs_distinct_keys() {
        let a = Keychain::derive(b"seed", NodeId(0), 4);
        assert_ne!(a.channel(NodeId(1)), a.channel(NodeId(2)));
        let b = Keychain::derive(b"seed", NodeId(1), 4);
        assert_ne!(a.channel(NodeId(2)), b.channel(NodeId(2)));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a1 = Keychain::derive(b"seed-1", NodeId(0), 2);
        let a2 = Keychain::derive(b"seed-2", NodeId(0), 2);
        assert_ne!(a1.channel(NodeId(1)), a2.channel(NodeId(1)));
    }

    #[test]
    fn tag_verify_roundtrip_and_rejection() {
        let kc = Keychain::derive(b"seed", NodeId(0), 3);
        let key = kc.channel(NodeId(1));
        let tag = key.tag(b"payload");
        assert!(key.verify(b"payload", &tag).is_ok());
        assert_eq!(key.verify(b"payloae", &tag), Err(MacError));
        assert_eq!(key.verify(b"payload", &tag[..31]), Err(MacError));
        let mut bad = tag;
        bad[0] ^= 1;
        assert_eq!(key.verify(b"payload", &bad), Err(MacError));
    }

    #[test]
    fn tag_segments_equals_concatenation() {
        let kc = Keychain::derive(b"seed", NodeId(0), 2);
        let key = kc.channel(NodeId(1));
        assert_eq!(key.tag_segments(&[b"head", b"body"]), key.tag(b"headbody"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn derive_rejects_out_of_range_id() {
        let _ = Keychain::derive(b"seed", NodeId(5), 5);
    }

    #[test]
    fn debug_never_prints_key_material() {
        let kc = Keychain::derive(b"seed", NodeId(1), 2);
        let dbg = format!("{kc:?} {:?}", kc.channel(NodeId(0)));
        assert!(dbg.contains("ChannelKey(..)"));
        assert!(!dbg.contains("seed"));
    }

    #[test]
    fn mac_error_display() {
        assert_eq!(MacError.to_string(), "message authentication failed");
    }
}
