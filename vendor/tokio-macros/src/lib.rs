//! Offline stand-in for `tokio-macros`.
//!
//! Rewrites `async fn` items so their bodies run under the vendored tokio
//! stub's block-on executor. Attribute arguments such as
//! `flavor = "multi_thread"` and `worker_threads = N` are accepted and
//! ignored: the stub runtime is thread-per-task, so there is no worker pool
//! to size.
//!
//! Implemented without `syn`/`quote` (no crates.io access): the input token
//! stream is edited directly — the `async` keyword is dropped and the final
//! brace-delimited group (the function body) is wrapped in
//! `tokio::runtime::Runtime::new().unwrap().block_on(async move { .. })`.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Marks an `async fn` as a test, run to completion on the stub runtime.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    let mut out: TokenStream = "#[::core::prelude::v1::test]".parse().expect("test attr");
    out.extend(rewrite_async_fn(item));
    out
}

/// Runs an `async fn main` to completion on the stub runtime.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite_async_fn(item)
}

fn rewrite_async_fn(item: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // Drop the top-level `async` keyword (the one immediately before `fn`,
    // possibly separated by `unsafe`/ABI tokens — in practice, adjacent).
    let mut sig: Vec<TokenTree> = Vec::with_capacity(tokens.len());
    let mut dropped_async = false;
    for tt in tokens {
        if !dropped_async {
            if let TokenTree::Ident(ident) = &tt {
                if ident.to_string() == "async" {
                    dropped_async = true;
                    continue;
                }
            }
        }
        sig.push(tt);
    }
    assert!(dropped_async, "#[tokio::main]/#[tokio::test] requires an `async fn`");

    // The last brace group is the function body.
    let body = match sig.pop() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected a function body, found {other:?}"),
    };

    let wrapped_src =
        format!("{{ ::tokio::runtime::Runtime::new().unwrap().block_on(async move {}) }}", body,);
    let wrapped: TokenStream = wrapped_src.parse().expect("wrapped body parses");

    let mut out = TokenStream::new();
    out.extend(sig);
    out.extend(std::iter::once(TokenTree::Group(Group::new(
        Delimiter::Brace,
        wrapped.into_iter().next().map(group_inner).expect("brace group"),
    ))));
    out
}

fn group_inner(tt: TokenTree) -> TokenStream {
    match tt {
        TokenTree::Group(g) => g.stream(),
        other => panic!("expected a group, found {other:?}"),
    }
}
