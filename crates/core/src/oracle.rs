//! The streaming oracle service: Delphi, epoch after epoch.
//!
//! The paper's deployment (and DORA's, arXiv:2305.03903) is not a single
//! agreement — it is an oracle that agrees on fresh prices round after
//! round over the same node set. [`OracleService`] is that driver: it
//! binds the epoch pipeline of `delphi-primitives` to [`DelphiNode`],
//! spawning one Delphi instance per `(epoch, asset)` pair from a streaming
//! price source and emitting a strictly epoch-ordered stream of
//! agreements.
//!
//! The service is sans-io like everything else in this workspace: run it
//! under the discrete-event simulator (it implements
//! [`Protocol`]) or hand its pipeline to `delphi-net`'s
//! `run_epoch_service` for a real TCP deployment via
//! [`OracleService::into_mux`].

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use delphi_primitives::wire::MAX_VECTOR_DIMS;
use delphi_primitives::{
    flatten_vector_events, Envelope, EpochConfig, EpochEvent, EpochId, EpochMux, EpochProtocol,
    EpochStats, FlushPolicy, InstanceId, NodeId, Protocol,
};

use crate::delphi::{DelphiNode, VectorDelphiNode};
use crate::params::DelphiConfig;

/// Streaming price source: this node's protocol input for one
/// `(epoch, asset)` pair.
///
/// Deployments derive inputs deterministically from a shared seed (see
/// `delphi_workloads::EpochFeed`), so every node computes its own slice of
/// the same quote without any distribution step.
pub type PriceSource = Box<dyn FnMut(EpochId, InstanceId) -> f64 + Send>;

/// A long-lived Delphi oracle: one agreement per `(epoch, asset)` pair,
/// pipelined under a bounded live window.
///
/// The blessed way to construct one is `delphi_api::ServiceBuilder`
/// (re-exported from the umbrella `delphi` crate), which also wires the
/// TCP driver and the serving layer; [`OracleService::from_parts`] is the
/// sans-io escape hatch the builder itself uses.
///
/// # Example
///
/// ```
/// use delphi_core::{DelphiConfig, OracleService};
/// use delphi_primitives::{EpochConfig, FlushPolicy, NodeId, Protocol};
///
/// let cfg = DelphiConfig::builder(4).space(0.0, 100.0).rho0(1.0)
///     .delta_max(8.0).epsilon(1.0).build().unwrap();
/// let epochs = EpochConfig::new(5, 2, 2, 4, cfg.t());
/// let mut node = OracleService::from_parts(cfg, NodeId(0), epochs, FlushPolicy::PerStep, 1,
///     Box::new(|e, a| 50.0 + f64::from(e.0) + f64::from(a.0)));
/// assert!(!node.start().is_empty(), "the first epochs start immediately");
/// ```
pub struct OracleService {
    inner: EpochProtocol<DelphiNode>,
}

impl OracleService {
    /// Creates the service for node `me` — the single low-level
    /// constructor (the `new` / `new_sharded` pair it replaces is gone;
    /// deployments go through `delphi_api::ServiceBuilder`).
    ///
    /// `epochs.t` should match `cfg.t()` (the protocol's fault threshold
    /// governs the rejoin quorum too); `source` supplies this node's input
    /// per `(epoch, asset)` pair. With `recv_shards > 1` outgoing batches
    /// are flushed per `(destination, receive shard)` and tagged with
    /// their [`AgreementId::shard`](delphi_primitives::AgreementId::shard)
    /// class, so drivers with a per-shard receive CPU (the simulator's
    /// `recv_shards`, `delphi-net`'s sharded dispatch) overlap the
    /// processing of different assets' traffic.
    ///
    /// # Panics
    ///
    /// Panics on an invalid epoch config, `me` out of range for the
    /// protocol config's `n`, or `recv_shards == 0`.
    pub fn from_parts(
        cfg: DelphiConfig,
        me: NodeId,
        epochs: EpochConfig,
        flush: FlushPolicy,
        recv_shards: usize,
        source: PriceSource,
    ) -> OracleService {
        Self::build(cfg, me, epochs, flush, recv_shards, source, None)
    }

    /// [`OracleService::from_parts`] with a shared round counter attached
    /// to every spawned [`DelphiNode`] (see
    /// [`DelphiNode::with_round_probe`]): the counter measures total BinAA
    /// rounds completed across all `(epoch, asset)` instances, the
    /// denominator-free half of a rounds-per-agreement figure.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_probed(
        cfg: DelphiConfig,
        me: NodeId,
        epochs: EpochConfig,
        flush: FlushPolicy,
        recv_shards: usize,
        source: PriceSource,
        probe: Arc<AtomicU64>,
    ) -> OracleService {
        Self::build(cfg, me, epochs, flush, recv_shards, source, Some(probe))
    }

    fn build(
        cfg: DelphiConfig,
        me: NodeId,
        epochs: EpochConfig,
        flush: FlushPolicy,
        recv_shards: usize,
        mut source: PriceSource,
        probe: Option<Arc<AtomicU64>>,
    ) -> OracleService {
        let n = cfg.n();
        let mux = EpochMux::new(
            epochs,
            me,
            n,
            Box::new(move |epoch, asset| {
                let node = DelphiNode::new(cfg.clone(), me, source(epoch, asset));
                match &probe {
                    Some(p) => node.with_round_probe(p.clone()),
                    None => node,
                }
            }),
        );
        OracleService { inner: EpochProtocol::new(mux, flush).recv_shards(recv_shards) }
    }

    /// The ordered agreement stream emitted so far.
    pub fn events(&self) -> &[EpochEvent<f64>] {
        self.inner.mux().events()
    }

    /// Epoch-layer counters (GC drops, skips, peak residency).
    pub fn stats(&self) -> EpochStats {
        self.inner.mux().stats()
    }

    /// Epoch-batch entries flushed so far (envelopes after broadcast
    /// expansion) — the transport-independent unit batching comparisons
    /// normalize by.
    pub fn sent_entries(&self) -> u64 {
        self.inner.sent_entries()
    }

    /// Batches flushed so far (one transport frame each).
    pub fn sent_batches(&self) -> u64 {
        self.inner.sent_batches()
    }

    /// Consumes the service, returning the bare pipeline for transports
    /// that route epoch entries natively (`delphi_net::run_epoch_service`).
    pub fn into_mux(self) -> EpochMux<DelphiNode> {
        self.inner.into_mux()
    }

    /// Boxes the service for the simulator's node vectors.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Vec<EpochEvent<f64>>>> {
        Box::new(self)
    }
}

impl Protocol for OracleService {
    type Output = Vec<EpochEvent<f64>>;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.inner.start()
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        self.inner.on_message(from, payload)
    }

    fn on_tick(&mut self) -> Vec<Envelope> {
        self.inner.on_tick()
    }

    fn output(&self) -> Option<Vec<EpochEvent<f64>>> {
        self.inner.output()
    }

    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// A vector-basket Delphi oracle: **one** multidimensional agreement
/// instance per epoch, instead of one instance per `(epoch, asset)` pair.
///
/// Each epoch spawns a single [`VectorDelphiNode`] whose basket covers
/// every configured asset; the epoch layer sees one instance (asset 0 on
/// the wire), and the per-asset agreement stream is recovered by
/// flattening each epoch's `Vec<f64>` output — so consumers (and the
/// throughput accounting built on
/// [`EpochEvent`]) still count one agreement per `(epoch, asset)`.
///
/// Compared with [`OracleService`] + per-asset sharding, this trades
/// receive-side parallelism (all basket traffic lands in one shard class)
/// for an ~basket-size reduction in sections, wire entries, and BinAA
/// rounds per agreement. Prefer it when per-message overhead — framing,
/// MACs, syscalls — dominates; prefer per-asset sharding when receive CPU
/// is the bottleneck.
pub struct VectorOracleService {
    inner: EpochProtocol<VectorDelphiNode>,
    dims: u16,
}

impl VectorOracleService {
    /// Creates the vector service for node `me`. `epochs.assets` becomes
    /// the basket dimension count; on the wire each epoch carries a single
    /// agreement instance.
    ///
    /// # Panics
    ///
    /// Panics on an invalid epoch config, `me` out of range, or a basket
    /// larger than [`MAX_VECTOR_DIMS`].
    pub fn from_parts(
        cfg: DelphiConfig,
        me: NodeId,
        epochs: EpochConfig,
        flush: FlushPolicy,
        source: PriceSource,
    ) -> VectorOracleService {
        Self::build(cfg, me, epochs, flush, source, None)
    }

    /// [`VectorOracleService::from_parts`] with a shared round counter
    /// attached to every spawned [`VectorDelphiNode`]. One basket adds
    /// `(l_max + 1) × r_max` per epoch regardless of its size — compare
    /// with [`OracleService::from_parts_probed`], which pays that per
    /// asset.
    pub fn from_parts_probed(
        cfg: DelphiConfig,
        me: NodeId,
        epochs: EpochConfig,
        flush: FlushPolicy,
        source: PriceSource,
        probe: Arc<AtomicU64>,
    ) -> VectorOracleService {
        Self::build(cfg, me, epochs, flush, source, Some(probe))
    }

    fn build(
        cfg: DelphiConfig,
        me: NodeId,
        epochs: EpochConfig,
        flush: FlushPolicy,
        mut source: PriceSource,
        probe: Option<Arc<AtomicU64>>,
    ) -> VectorOracleService {
        let n = cfg.n();
        let dims = epochs.assets;
        assert!(dims >= 1, "vector service needs at least one asset");
        assert!(dims <= MAX_VECTOR_DIMS, "basket of {dims} exceeds {MAX_VECTOR_DIMS} dimensions");
        let mux = EpochMux::new_vector(
            epochs,
            me,
            n,
            Box::new(move |epoch| {
                let inputs: Vec<f64> = (0..dims).map(|a| source(epoch, InstanceId(a))).collect();
                let node = VectorDelphiNode::new(cfg.clone(), me, &inputs);
                match &probe {
                    Some(p) => node.with_round_probe(p.clone()),
                    None => node,
                }
            }),
        );
        VectorOracleService { inner: EpochProtocol::new(mux, flush), dims }
    }

    /// Basket dimension count (the configured asset count).
    pub fn dims(&self) -> u16 {
        self.dims
    }

    /// The ordered agreement stream emitted so far, flattened to one
    /// [`EpochEvent`] per epoch with all basket values in asset order —
    /// the same shape [`OracleService::events`] produces.
    pub fn events(&self) -> Vec<EpochEvent<f64>> {
        flatten_vector_events(self.inner.mux().events().to_vec())
    }

    /// Epoch-layer counters (GC drops, skips, peak residency).
    pub fn stats(&self) -> EpochStats {
        self.inner.mux().stats()
    }

    /// Epoch-batch entries flushed so far (envelopes after broadcast
    /// expansion).
    pub fn sent_entries(&self) -> u64 {
        self.inner.sent_entries()
    }

    /// Batches flushed so far (one transport frame each).
    pub fn sent_batches(&self) -> u64 {
        self.inner.sent_batches()
    }

    /// Consumes the service, returning the bare pipeline for transports
    /// that route epoch entries natively (`delphi_net::run_epoch_service`).
    pub fn into_mux(self) -> EpochMux<VectorDelphiNode> {
        self.inner.into_mux()
    }

    /// Boxes the service for the simulator's node vectors.
    pub fn boxed(self) -> Box<dyn Protocol<Output = Vec<EpochEvent<f64>>>> {
        Box::new(self)
    }
}

impl Protocol for VectorOracleService {
    type Output = Vec<EpochEvent<f64>>;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.inner.start()
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        self.inner.on_message(from, payload)
    }

    fn on_tick(&mut self) -> Vec<Envelope> {
        self.inner.on_tick()
    }

    fn output(&self) -> Option<Vec<EpochEvent<f64>>> {
        self.inner.output().map(flatten_vector_events)
    }

    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_primitives::EpochOutcome;

    fn cfg(n: usize) -> DelphiConfig {
        DelphiConfig::builder(n)
            .space(0.0, 1000.0)
            .rho0(1.0)
            .delta_max(32.0)
            .epsilon(1.0)
            .build()
            .expect("config")
    }

    /// Hand-delivered mesh run (no simulator dependency in this crate).
    fn run_mesh<P: Protocol>(nodes: &mut [P]) {
        use delphi_primitives::Recipient;
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, bytes::Bytes)> =
            std::collections::VecDeque::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            for env in node.start() {
                let Recipient::One(dest) = env.to else { panic!("epoch batches are to_one") };
                queue.push_back((NodeId(i as u16), dest, env.payload));
            }
        }
        while let Some((from, to, payload)) = queue.pop_front() {
            for env in nodes[to.index()].on_message(from, &payload) {
                let Recipient::One(dest) = env.to else { panic!("epoch batches are to_one") };
                queue.push_back((to, dest, env.payload));
            }
        }
    }

    #[test]
    fn oracle_service_streams_epsilon_converged_epochs() {
        let n = 4;
        let epochs = 6u32;
        let assets = 2u16;
        let protocol_cfg = cfg(n);
        let epoch_cfg = EpochConfig::new(epochs, assets, 2, 4, protocol_cfg.t());
        let mut nodes: Vec<OracleService> = NodeId::all(n)
            .map(|id| {
                // Per-node spread around an epoch+asset-dependent center.
                let offset = id.index() as f64 * 0.2;
                OracleService::from_parts(
                    protocol_cfg.clone(),
                    id,
                    epoch_cfg,
                    FlushPolicy::PerStep,
                    1,
                    Box::new(move |e, a| {
                        500.0 + f64::from(e.0) * 3.0 + f64::from(a.0) * 7.0 + offset
                    }),
                )
            })
            .collect();
        run_mesh(&mut nodes);
        let streams: Vec<Vec<EpochEvent<f64>>> =
            nodes.iter().map(|nd| nd.output().expect("stream complete")).collect();
        for events in &streams {
            assert_eq!(events.len(), epochs as usize);
            for (e, event) in events.iter().enumerate() {
                assert_eq!(event.epoch, EpochId(e as u32));
                assert!(matches!(event.outcome, EpochOutcome::Agreed(_)));
            }
        }
        // Per-(epoch, asset) epsilon-agreement across the cluster, plus
        // validity: outputs inside the honest input range.
        for e in 0..epochs as usize {
            for a in 0..assets as usize {
                let vals: Vec<f64> = streams
                    .iter()
                    .map(|events| match &events[e].outcome {
                        EpochOutcome::Agreed(v) => v[a],
                        EpochOutcome::Skipped => panic!("skipped"),
                    })
                    .collect();
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert!(hi - lo <= 1.0 + 1e-9, "epoch {e} asset {a}: spread {}", hi - lo);
                let center = 500.0 + e as f64 * 3.0 + a as f64 * 7.0;
                assert!(lo >= center - 1e-9 && hi <= center + 0.6 + 1e-9, "validity");
            }
        }
        for node in &nodes {
            assert_eq!(node.stats().stale_epochs, 0);
            assert!(node.stats().peak_resident <= 4);
        }
    }

    #[test]
    fn vector_oracle_streams_epsilon_converged_baskets() {
        use std::sync::atomic::Ordering;

        let n = 4;
        let epochs = 6u32;
        let assets = 4u16;
        let protocol_cfg = cfg(n);
        let epoch_cfg = EpochConfig::new(epochs, assets, 2, 4, protocol_cfg.t());
        let probe = Arc::new(AtomicU64::new(0));
        let mut nodes: Vec<VectorOracleService> = NodeId::all(n)
            .map(|id| {
                let offset = id.index() as f64 * 0.2;
                VectorOracleService::from_parts_probed(
                    protocol_cfg.clone(),
                    id,
                    epoch_cfg,
                    FlushPolicy::PerStep,
                    Box::new(move |e, a| {
                        500.0 + f64::from(e.0) * 3.0 + f64::from(a.0) * 7.0 + offset
                    }),
                    probe.clone(),
                )
            })
            .collect();
        run_mesh(&mut nodes);
        let streams: Vec<Vec<EpochEvent<f64>>> =
            nodes.iter().map(|nd| nd.output().expect("stream complete")).collect();
        // Flattened shape matches the per-asset service: one event per
        // epoch, `assets` agreed values each, in asset order.
        for events in &streams {
            assert_eq!(events.len(), epochs as usize);
            for (e, event) in events.iter().enumerate() {
                assert_eq!(event.epoch, EpochId(e as u32));
                match &event.outcome {
                    EpochOutcome::Agreed(v) => assert_eq!(v.len(), assets as usize),
                    EpochOutcome::Skipped => panic!("skipped"),
                }
            }
        }
        // Per-dimension epsilon-agreement across the cluster, plus
        // relaxed validity inside each dimension's honest input band.
        for e in 0..epochs as usize {
            for a in 0..assets as usize {
                let vals: Vec<f64> = streams
                    .iter()
                    .map(|events| match &events[e].outcome {
                        EpochOutcome::Agreed(v) => v[a],
                        EpochOutcome::Skipped => panic!("skipped"),
                    })
                    .collect();
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert!(hi - lo <= 1.0 + 1e-9, "epoch {e} dim {a}: spread {}", hi - lo);
                let center = 500.0 + e as f64 * 3.0 + a as f64 * 7.0;
                assert!(lo >= center - 1e-9 && hi <= center + 0.6 + 1e-9, "validity");
            }
        }
        for node in &nodes {
            assert_eq!(node.stats().stale_epochs, 0);
            assert!(node.stats().peak_resident <= 4);
            assert_eq!(node.dims(), assets);
        }
        // The shared round walk: epochs × (l_max + 1) × r_max completions
        // per node, independent of basket size.
        let expected = u64::from(epochs)
            * n as u64
            * u64::from(protocol_cfg.l_max() + 1)
            * u64::from(protocol_cfg.r_max());
        assert_eq!(probe.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn oracle_service_exposes_pipeline_for_native_transports() {
        let protocol_cfg = cfg(4);
        let epoch_cfg = EpochConfig::new(3, 1, 1, 2, protocol_cfg.t());
        let service = OracleService::from_parts(
            protocol_cfg,
            NodeId(2),
            epoch_cfg,
            FlushPolicy::adaptive(),
            1,
            Box::new(|_, _| 42.0),
        );
        let mux = service.into_mux();
        assert_eq!(mux.node_id(), NodeId(2));
        assert_eq!(mux.config().epochs, 3);
    }
}
