//! The oracle-network workload: a multi-exchange BTC price feed (§VI-A).
//!
//! Every simulated minute has a ground-truth price following a geometric
//! random walk; the ten exchanges quote prices whose *range* (max − min)
//! follows the Fréchet(α = 4.41, scale = 29.3) law the paper fit to two
//! weeks of real feeds (Fig. 4). Each oracle node samples one or more
//! exchanges and inputs the median of what it sees — the paper's node
//! behaviour.

use delphi_stats::dist::{ContinuousDist, Frechet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic feed.
#[derive(Clone, Debug)]
pub struct BtcFeedConfig {
    /// Number of exchanges quoting prices (paper: 10).
    pub exchanges: usize,
    /// Starting ground-truth price in USD (paper era: ≈ 30 000$).
    pub start_price: f64,
    /// Per-minute log-return volatility of the truth walk.
    pub volatility: f64,
    /// Fréchet shape of the per-minute quote range (paper: 4.41).
    pub range_alpha: f64,
    /// Fréchet scale of the per-minute quote range in USD (paper: 29.3).
    pub range_scale: f64,
    /// Exchanges each node queries (input = their median; paper: ≥ 1).
    pub feeds_per_node: usize,
}

impl Default for BtcFeedConfig {
    fn default() -> Self {
        BtcFeedConfig {
            exchanges: 10,
            start_price: 30_000.0,
            volatility: 0.0006,
            range_alpha: 4.41,
            range_scale: 29.3,
            feeds_per_node: 3,
        }
    }
}

/// One minute of quotes.
#[derive(Clone, Debug)]
pub struct MinuteQuote {
    /// The latent true price this minute.
    pub truth: f64,
    /// One quote per exchange.
    pub exchange_prices: Vec<f64>,
}

impl MinuteQuote {
    /// The quote range `δ = max − min` — the quantity Fig. 4 histograms.
    pub fn range(&self) -> f64 {
        let lo = self.exchange_prices.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = self.exchange_prices.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

/// The synthetic feed generator.
///
/// # Example
///
/// ```
/// use delphi_workloads::{BtcFeed, BtcFeedConfig};
///
/// let mut feed = BtcFeed::new(BtcFeedConfig::default(), 7);
/// let quote = feed.next_minute();
/// assert_eq!(quote.exchange_prices.len(), 10);
/// let inputs = feed.node_inputs(&quote, 16);
/// assert_eq!(inputs.len(), 16);
/// // Node inputs are medians of exchange quotes: inside the quote hull.
/// assert!(inputs.iter().all(|v| *v >= quote.truth - quote.range()
///     && *v <= quote.truth + quote.range()));
/// ```
#[derive(Debug)]
pub struct BtcFeed {
    cfg: BtcFeedConfig,
    rng: StdRng,
    price: f64,
    range_dist: Frechet,
}

impl BtcFeed {
    /// Creates a feed with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no exchanges,
    /// non-positive price/volatility, invalid Fréchet parameters).
    pub fn new(cfg: BtcFeedConfig, seed: u64) -> BtcFeed {
        assert!(cfg.exchanges >= 2, "need at least two exchanges");
        assert!(cfg.start_price > 0.0 && cfg.start_price.is_finite());
        assert!(cfg.volatility >= 0.0 && cfg.volatility.is_finite());
        assert!(cfg.feeds_per_node >= 1, "nodes query at least one exchange");
        let range_dist =
            Frechet::new(0.0, cfg.range_scale, cfg.range_alpha).expect("valid Fréchet parameters");
        BtcFeed { price: cfg.start_price, cfg, rng: StdRng::seed_from_u64(seed), range_dist }
    }

    /// The current ground-truth price.
    pub fn truth(&self) -> f64 {
        self.price
    }

    /// Advances one minute and returns the exchanges' quotes.
    pub fn next_minute(&mut self) -> MinuteQuote {
        // Geometric random walk for the truth.
        let z: f64 = {
            let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = self.rng.random();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        self.price *= (self.cfg.volatility * z).exp();

        // Quote range for this minute, then quotes spanning exactly it.
        let delta = self.range_dist.sample(&mut self.rng);
        let m = self.cfg.exchanges;
        let mut offsets: Vec<f64> = (0..m).map(|_| self.rng.random::<f64>()).collect();
        // Force the offsets to span [0, 1] so the realized range is δ.
        offsets[0] = 0.0;
        offsets[1] = 1.0;
        let exchange_prices =
            offsets.iter().map(|o| self.price - delta / 2.0 + o * delta).collect();
        MinuteQuote { truth: self.price, exchange_prices }
    }

    /// Draws the inputs of `n` oracle nodes for a quote: each node
    /// queries `feeds_per_node` random exchanges and takes the median.
    pub fn node_inputs(&mut self, quote: &MinuteQuote, n: usize) -> Vec<f64> {
        let m = quote.exchange_prices.len();
        let k = self.cfg.feeds_per_node.min(m);
        (0..n)
            .map(|_| {
                let mut picks: Vec<f64> =
                    (0..k).map(|_| quote.exchange_prices[self.rng.random_range(0..m)]).collect();
                picks.sort_by(f64::total_cmp);
                picks[(picks.len() - 1) / 2]
            })
            .collect()
    }

    /// Generates `minutes` of per-minute ranges — the Fig. 4 dataset.
    pub fn range_series(&mut self, minutes: usize) -> Vec<f64> {
        (0..minutes).map(|_| self.next_minute().range()).collect()
    }
}

/// One minute of oracle inputs for an `n`-node deployment, reproducible
/// from `seed` alone.
///
/// Multi-process cluster harnesses (the `delphi-node` binary, the
/// `tcp_cluster` example) call this in every process with the shared seed
/// from the cluster config: each process derives the identical vector and
/// picks its own entry by node id, so no input distribution step is
/// needed.
pub fn deployment_inputs(n: usize, seed: u64) -> Vec<f64> {
    let mut feed = BtcFeed::new(BtcFeedConfig::default(), seed);
    let quote = feed.next_minute();
    feed.node_inputs(&quote, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delphi_stats::describe::Summary;
    use delphi_stats::fit;

    #[test]
    fn quotes_span_the_sampled_range() {
        let mut feed = BtcFeed::new(BtcFeedConfig::default(), 1);
        for _ in 0..50 {
            let q = feed.next_minute();
            assert_eq!(q.exchange_prices.len(), 10);
            assert!(q.range() > 0.0);
            // Quotes centred on the truth.
            let lo = q.exchange_prices.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = q.exchange_prices.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!((lo - (q.truth - q.range() / 2.0)).abs() < 1e-6);
            assert!((hi - (q.truth + q.range() / 2.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn range_statistics_match_the_paper() {
        // Two weeks of minutes: 20 160 samples. The paper observes
        // δ < 100$ for ~99.2% of minutes and a mean around 25–35$.
        let mut feed = BtcFeed::new(BtcFeedConfig::default(), 2);
        let ranges = feed.range_series(20_160);
        let s = Summary::of(&ranges);
        assert!((25.0..45.0).contains(&s.mean), "mean range {}", s.mean);
        let below_100 = ranges.iter().filter(|&&r| r < 100.0).count() as f64 / ranges.len() as f64;
        assert!(below_100 > 0.985, "P(δ < 100$) = {below_100}");
    }

    #[test]
    fn refitting_recovers_the_frechet_law() {
        let mut feed = BtcFeed::new(BtcFeedConfig::default(), 3);
        let ranges = feed.range_series(20_160);
        let f = fit::frechet_log_moments(&ranges).unwrap();
        assert!((f.alpha() - 4.41).abs() < 0.5, "alpha {}", f.alpha());
        assert!((f.scale() - 29.3).abs() < 2.0, "scale {}", f.scale());
    }

    #[test]
    fn node_inputs_are_medians_within_hull() {
        let mut feed = BtcFeed::new(BtcFeedConfig::default(), 4);
        let q = feed.next_minute();
        let inputs = feed.node_inputs(&q, 64);
        assert_eq!(inputs.len(), 64);
        let lo = q.exchange_prices.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = q.exchange_prices.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in inputs {
            assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn truth_walks_but_slowly() {
        let mut feed = BtcFeed::new(BtcFeedConfig::default(), 5);
        let p0 = feed.truth();
        let _ = feed.range_series(1000);
        let p1 = feed.truth();
        assert_ne!(p0, p1);
        assert!((p1 / p0 - 1.0).abs() < 0.2, "walk drifted {p0} -> {p1}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = BtcFeed::new(BtcFeedConfig::default(), 9);
        let mut b = BtcFeed::new(BtcFeedConfig::default(), 9);
        assert_eq!(a.next_minute().exchange_prices, b.next_minute().exchange_prices);
    }

    #[test]
    fn deployment_inputs_are_deterministic_and_tight() {
        // Two independent processes with the same seed must agree on the
        // whole vector — that is what lets a cluster skip input
        // distribution entirely.
        let a = deployment_inputs(16, 42);
        let b = deployment_inputs(16, 42);
        assert_eq!(a, b);
        assert_ne!(a, deployment_inputs(16, 43));
        // Inputs are exchange-quote medians: a few tens of dollars apart.
        let lo = a.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = a.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo < 500.0, "spread {}", hi - lo);
    }

    #[test]
    #[should_panic(expected = "two exchanges")]
    fn rejects_single_exchange() {
        let cfg = BtcFeedConfig { exchanges: 1, ..BtcFeedConfig::default() };
        let _ = BtcFeed::new(cfg, 1);
    }
}
