//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset its benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up briefly,
//! then timed over `sample_size` samples of an adaptively chosen iteration
//! count; median per-iteration time (and derived throughput) is printed.
//! There is no outlier analysis, HTML report, or baseline comparison — the
//! point is that `cargo bench` compiles and produces useful numbers offline.
//!
//! # JSON output (`BENCH_*.json` convention)
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object per line (JSON Lines):
//!
//! ```json
//! {"id":"crypto/hmac_sha256_1k","median_ns":3212.0,"min_ns":3199.5,"max_ns":3313.0,"iters":6225,"samples":40}
//! ```
//!
//! The file is truncated at the first write of each bench process. A
//! relative path resolves against the bench binary's working directory —
//! the *package* directory, not the workspace root — so anchor it
//! explicitly when regenerating the checked-in reference numbers:
//! `BENCH_JSON="$PWD/BENCH_micro.json" cargo bench -p delphi-bench --bench
//! micro` from the workspace root. CI uploads the file as an artifact for
//! regression review.

use std::io::Write as _;
use std::sync::Once;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes, displayed in decimal multiples.
    BytesDecimal(u64),
}

/// How `iter_batched` amortizes setup cost. The stub runs one setup per
/// routine call regardless; the variant only exists for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Calibrate: find an iteration count that takes roughly
    // measurement_time / sample_size per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = measurement_time / sample_size as u32;
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if median > 0.0 => {
            format!("  thrpt: {}/s", human_bytes(n as f64 / median))
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!("{id:<44} time: [{} {} {}]{rate}", human_time(lo), human_time(median), human_time(hi),);
    append_json_line(id, lo, median, hi, iters, sample_size);
}

/// Appends one JSON-Lines record to the `BENCH_JSON` file, truncating it
/// at the first write of the process (see module docs).
fn append_json_line(id: &str, lo: f64, median: f64, hi: f64, iters: u64, samples: usize) {
    let Some(path) = std::env::var_os("BENCH_JSON") else { return };
    static TRUNCATE: Once = Once::new();
    TRUNCATE.call_once(|| {
        let _ = std::fs::write(&path, b"");
    });
    let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec!['?'],
            c => vec![c],
        })
        .collect();
    let _ = writeln!(
        file,
        "{{\"id\":\"{escaped}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
         \"iters\":{iters},\"samples\":{samples}}}",
        median * 1e9,
        lo * 1e9,
        hi * 1e9,
    );
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes_per_sec;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

/// Declares a benchmark group function, matching both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that run benchmarks: `BENCH_JSON` is process-global
    /// state, so a concurrent bench_function while the JSON test holds the
    /// env var set would append stray lines to its file.
    static BENCH_LOCK: Mutex<()> = Mutex::new(());

    fn bench_lock() -> MutexGuard<'static, ()> {
        BENCH_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn bench_function_runs_closure() {
        let _guard = bench_lock();
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(2));
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        assert!(ran >= 3, "calibration + samples should call the closure repeatedly");
    }

    #[test]
    fn groups_run_and_finish() {
        let _guard = bench_lock();
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Bytes(128));
        group.bench_function("one", |b| b.iter(|| std::hint::black_box(41) + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn bench_json_lines_written_when_env_set() {
        let _guard = bench_lock();
        let path =
            std::env::temp_dir().join(format!("bench-json-test-{}.json", std::process::id()));
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(2));
        c.bench_function("json/one", |b| b.iter(|| std::hint::black_box(1) + 1));
        c.bench_function("json/two", |b| b.iter(|| std::hint::black_box(2) + 2));
        std::env::remove_var("BENCH_JSON");
        let content = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2, "{content}");
        assert!(lines[0].starts_with("{\"id\":\"json/one\",\"median_ns\":"), "{}", lines[0]);
        assert!(lines[1].contains("\"iters\":"), "{}", lines[1]);
        assert!(lines[1].ends_with('}'), "{}", lines[1]);
    }

    #[test]
    fn humanize() {
        assert!(human_time(2.0).ends_with(" s"));
        assert!(human_time(2e-3).ends_with(" ms"));
        assert!(human_time(2e-6).ends_with(" µs"));
        assert!(human_time(2e-9).ends_with(" ns"));
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
    }
}
