//! The bench regression gate: compares a fresh `BENCH_JSON` run against a
//! checked-in reference and fails on regressions.
//!
//! The vendored criterion stub emits one JSON-Lines record per benchmark
//! (`{"id":…,"median_ns":…}`); the reference files (`BENCH_micro.json`,
//! `BENCH_protocols.json`, `BENCH_ablation.json` at the workspace root)
//! were recorded on the reference machine. Because CI runners differ in
//! absolute speed, the gate supports *normalized* comparison: the median
//! of all per-benchmark ratios is taken as the machine-speed factor, and a
//! benchmark regresses only if it is more than the tolerance slower than
//! that factor predicts. On the reference machine itself the factor is
//! ≈ 1 and the gate degrades to a plain ±tolerance check.

use std::fmt;

/// One benchmark's record from a `BENCH_JSON` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
}

impl BenchRecord {
    /// Parses every record out of a JSON-Lines `BENCH_JSON` body
    /// (unparsable lines are skipped — the stub writes nothing else, so a
    /// foreign line means a truncated write, which the id comparison then
    /// flags as missing).
    pub fn parse_lines(text: &str) -> Vec<BenchRecord> {
        text.lines()
            .filter_map(|line| {
                let id = json_str(line, "id")?;
                let median_ns = json_num(line, "median_ns")?;
                Some(BenchRecord { id, median_ns })
            })
            .collect()
    }
}

fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One benchmark's verdict inside a [`GateReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// Benchmark id.
    pub id: String,
    /// Reference median (ns).
    pub reference_ns: f64,
    /// Fresh median (ns), `None` when the fresh run is missing the id.
    pub fresh_ns: Option<f64>,
    /// `fresh / reference`, normalized by the machine-speed factor when
    /// normalization is on.
    pub ratio: Option<f64>,
    /// Whether this benchmark fails the gate.
    pub regressed: bool,
}

/// The gate's overall result.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Per-benchmark verdicts, reference order.
    pub verdicts: Vec<Verdict>,
    /// The machine-speed factor divided out (1.0 when normalization is
    /// off or no benchmark overlaps).
    pub speed_factor: f64,
    /// The tolerance the gate ran with.
    pub tolerance: f64,
}

impl GateReport {
    /// Whether any benchmark regressed (or went missing).
    pub fn failed(&self) -> bool {
        self.verdicts.iter().any(|v| v.regressed)
    }

    /// The failing benchmark ids.
    pub fn regressions(&self) -> impl Iterator<Item = &Verdict> {
        self.verdicts.iter().filter(|v| v.regressed)
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bench gate: tolerance ±{:.0}%, machine-speed factor {:.3}",
            self.tolerance * 100.0,
            self.speed_factor
        )?;
        for v in &self.verdicts {
            match (v.fresh_ns, v.ratio) {
                (Some(fresh), Some(ratio)) => writeln!(
                    f,
                    "  {:<44} ref {:>12.1} ns  fresh {:>12.1} ns  x{ratio:<6.3} {}",
                    v.id,
                    v.reference_ns,
                    fresh,
                    if v.regressed { "REGRESSED" } else { "ok" }
                )?,
                _ => writeln!(
                    f,
                    "  {:<44} ref {:>12.1} ns  fresh      MISSING  REGRESSED",
                    v.id, v.reference_ns
                )?,
            }
        }
        Ok(())
    }
}

/// Absolute slack added on top of the relative tolerance before a
/// benchmark counts as regressed.
///
/// Sub-10 ns benchmarks (`dyadic_cmp` is ~3 ns) jitter by whole
/// nanoseconds on shared CI runners — there a ±30% band is narrower than
/// the measurement granularity, and the suite-median speed factor
/// (dominated by µs-scale benches) cannot correct for it. Five
/// nanoseconds is far below any regression worth acting on and
/// negligible against µs-scale references.
pub const ABSOLUTE_SLACK_NS: f64 = 5.0;

/// Compares `fresh` against `reference` with a relative `tolerance`
/// (0.30 = ±30%).
///
/// With `normalize` on, every ratio is divided by the median ratio across
/// all overlapping benchmarks before the tolerance check, so a uniformly
/// slower (or faster) machine does not trip the gate — only benchmarks
/// that regressed *relative to the rest of the suite* do. A reference id
/// missing from the fresh run always fails (renames must refresh the
/// reference file). Fresh-only ids are ignored: new benchmarks land in
/// the reference on their own PR.
pub fn compare(
    reference: &[BenchRecord],
    fresh: &[BenchRecord],
    tolerance: f64,
    normalize: bool,
) -> GateReport {
    let fresh_of = |id: &str| fresh.iter().find(|r| r.id == id).map(|r| r.median_ns);
    let mut ratios: Vec<f64> = reference
        .iter()
        .filter_map(|r| fresh_of(&r.id).map(|f| f / r.median_ns))
        .filter(|r| r.is_finite() && *r > 0.0)
        .collect();
    ratios.sort_by(f64::total_cmp);
    let speed_factor = if normalize && !ratios.is_empty() { ratios[ratios.len() / 2] } else { 1.0 };

    let verdicts = reference
        .iter()
        .map(|r| {
            let fresh_ns = fresh_of(&r.id);
            let ratio = fresh_ns.map(|f| f / r.median_ns / speed_factor);
            let regressed = match fresh_ns {
                Some(f) => f > r.median_ns * speed_factor * (1.0 + tolerance) + ABSOLUTE_SLACK_NS,
                None => true,
            };
            Verdict { id: r.id.clone(), reference_ns: r.median_ns, fresh_ns, ratio, regressed }
        })
        .collect();
    GateReport { verdicts, speed_factor, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, median_ns: f64) -> BenchRecord {
        BenchRecord { id: id.to_string(), median_ns }
    }

    #[test]
    fn parses_the_stub_format() {
        let text = concat!(
            "{\"id\":\"crypto/sha256_1k\",\"median_ns\":4432.4,\"min_ns\":4261.7,",
            "\"max_ns\":6414.6,\"iters\":1797,\"samples\":40}\n",
            "garbage line\n",
            "{\"id\":\"wire/decode\",\"median_ns\":1231.0,\"min_ns\":1.0,",
            "\"max_ns\":2.0,\"iters\":1,\"samples\":2}\n",
        );
        let recs = BenchRecord::parse_lines(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], rec("crypto/sha256_1k", 4432.4));
        assert_eq!(recs[1].id, "wire/decode");
    }

    #[test]
    fn within_tolerance_passes() {
        let reference = [rec("a", 100.0), rec("b", 200.0)];
        let fresh = [rec("a", 120.0), rec("b", 190.0)];
        let report = compare(&reference, &fresh, 0.30, false);
        assert!(!report.failed(), "{report}");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let reference = [rec("a", 100.0), rec("b", 200.0)];
        let fresh = [rec("a", 140.0), rec("b", 190.0)];
        let report = compare(&reference, &fresh, 0.30, false);
        assert!(report.failed());
        let ids: Vec<&str> = report.regressions().map(|v| v.id.as_str()).collect();
        assert_eq!(ids, ["a"]);
    }

    #[test]
    fn normalization_forgives_a_uniformly_slower_machine() {
        // Everything is 2× slower (a slower CI runner): plain comparison
        // fails everywhere, normalized passes everywhere.
        let reference = [rec("a", 100.0), rec("b", 200.0), rec("c", 400.0)];
        let fresh = [rec("a", 200.0), rec("b", 400.0), rec("c", 800.0)];
        assert!(compare(&reference, &fresh, 0.30, false).failed());
        let report = compare(&reference, &fresh, 0.30, true);
        assert_eq!(report.speed_factor, 2.0);
        assert!(!report.failed(), "{report}");
    }

    #[test]
    fn normalization_still_catches_a_single_regression() {
        // Machine is uniformly 2× slower *and* one benchmark regressed 3×
        // on top: only that one should fail.
        let reference = [rec("a", 100.0), rec("b", 200.0), rec("c", 400.0)];
        let fresh = [rec("a", 200.0), rec("b", 1200.0), rec("c", 800.0)];
        let report = compare(&reference, &fresh, 0.30, true);
        assert!(report.failed());
        let ids: Vec<&str> = report.regressions().map(|v| v.id.as_str()).collect();
        assert_eq!(ids, ["b"]);
    }

    #[test]
    fn nanosecond_scale_benchmarks_get_absolute_slack() {
        // 3.4 ns -> 4.6 ns is +35% but only 1.2 ns — measurement noise on
        // a shared runner, not a regression. The same +35% at µs scale
        // still fails.
        let reference = [rec("tiny", 3.4), rec("big", 10_000.0)];
        let fresh = [rec("tiny", 4.6), rec("big", 10_000.0)];
        assert!(!compare(&reference, &fresh, 0.30, false).failed());
        let fresh = [rec("tiny", 3.4), rec("big", 13_500.0)];
        let report = compare(&reference, &fresh, 0.30, false);
        let ids: Vec<&str> = report.regressions().map(|v| v.id.as_str()).collect();
        assert_eq!(ids, ["big"]);
    }

    #[test]
    fn missing_benchmark_fails_the_gate() {
        let reference = [rec("a", 100.0), rec("gone", 50.0)];
        let fresh = [rec("a", 100.0)];
        let report = compare(&reference, &fresh, 0.30, true);
        assert!(report.failed());
        let missing = report.regressions().next().unwrap();
        assert_eq!(missing.id, "gone");
        assert_eq!(missing.fresh_ns, None);
    }

    #[test]
    fn fresh_only_benchmarks_are_ignored() {
        let reference = [rec("a", 100.0)];
        let fresh = [rec("a", 100.0), rec("new", 1.0)];
        let report = compare(&reference, &fresh, 0.30, true);
        assert!(!report.failed());
        assert_eq!(report.verdicts.len(), 1);
    }

    #[test]
    fn improvements_never_fail() {
        let reference = [rec("a", 100.0)];
        let fresh = [rec("a", 10.0)];
        assert!(!compare(&reference, &fresh, 0.30, false).failed());
    }

    #[test]
    fn display_lists_every_benchmark() {
        let report = compare(&[rec("a", 100.0), rec("b", 1.0)], &[rec("a", 100.0)], 0.3, false);
        let text = report.to_string();
        assert!(text.contains("a"), "{text}");
        assert!(text.contains("MISSING"), "{text}");
    }

    #[test]
    fn checked_in_reference_files_parse() {
        // The repo-root reference JSONs must stay parsable by this gate —
        // including the fig-binary convention (`emit_bench_json`), whose
        // records the gate reads exactly like criterion-stub output.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for name in
            ["BENCH_micro.json", "BENCH_protocols.json", "BENCH_ablation.json", "BENCH_fig.json"]
        {
            let path = format!("{root}/{name}");
            let text =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            let recs = BenchRecord::parse_lines(&text);
            assert!(!recs.is_empty(), "{name} has no records");
            assert!(recs.iter().all(|r| r.median_ns > 0.0), "{name} has a zero median");
        }
    }
}
