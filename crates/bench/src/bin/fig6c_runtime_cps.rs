#![forbid(unsafe_code)]
//! Regenerates **Fig. 6c**: runtime vs `n` on the embedded CPS testbed
//! (15 Raspberry-Pi-class hosts, shared links, slow CPUs) — Delphi
//! (δ = 5 m and δ = 50 m) vs FIN vs Abraham et al.
//!
//! Configuration per the figure caption: `Δ = 50 m, ρ0 = ε = 0.5 m`.
//! Expected shape: Delphi wins at *all* n here (computation/bandwidth
//! dominates, not rounds), by ~8× at n = 169; and unlike on AWS, the
//! range δ visibly affects Delphi's runtime (per-round volume matters).
//!
//! `cargo run --release -p delphi-bench --bin fig6c_runtime_cps [--quick]`

use delphi_bench::{
    cps_config, quick_mode, run_aad, run_acs, run_delphi, spread_inputs, TextTable,
};
use delphi_sim::Topology;

const HOSTS: usize = 15;

fn main() {
    let ns: &[usize] = if quick_mode() { &[43, 85] } else { &[43, 85, 127, 169] };
    println!("== Fig. 6c: runtime vs n on the embedded testbed (ms, simulated) ==\n");

    let mut table = TextTable::new(&["n", "Delphi d=5m", "Delphi d=50m", "FIN", "Abraham et al."]);
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for &n in ns {
        let cfg = cps_config(n);
        let d5 = run_delphi(&cfg, Topology::cps(n, HOSTS), &spread_inputs(n, 100.0, 5.0), 6201);
        let d50 = run_delphi(&cfg, Topology::cps(n, HOSTS), &spread_inputs(n, 100.0, 49.0), 6202);
        let fin = run_acs(n, Topology::cps(n, HOSTS), &spread_inputs(n, 100.0, 5.0), 6203);
        // Abraham et al. rounds: log2(Δ/ε) = log2(100) = 7.
        let aad = run_aad(n, Topology::cps(n, HOSTS), &spread_inputs(n, 100.0, 5.0), 7, 6204);
        table.row(&[
            n.to_string(),
            format!("{:.0}", d5.runtime_ms),
            format!("{:.0}", d50.runtime_ms),
            format!("{:.0}", fin.runtime_ms),
            format!("{:.0}", aad.runtime_ms),
        ]);
        rows.push([d5.runtime_ms, d50.runtime_ms, fin.runtime_ms, aad.runtime_ms]);
        eprintln!("  n={n} done");
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());

    let last = rows.last().expect("rows");
    println!("shape checks:");
    println!("  Delphi beats FIN at every n: {}", rows.iter().all(|r| r[0] < r[2]));
    println!(
        "  large n speedup vs FIN: {:.1}x, vs Abraham et al.: {:.1}x",
        last[2] / last[0],
        last[3] / last[0]
    );
    println!(
        "  δ sensitivity on CPS (δ=50m costs >15% more than δ=5m): {}",
        last[1] > last[0] * 1.15
    );
}
