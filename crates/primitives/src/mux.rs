//! Multiplexing many protocol instances over one mesh.
//!
//! A DORA-style oracle deployment runs one Delphi instance per price feed.
//! Running each instance over its own mesh multiplies the per-message
//! transport cost (framing + MAC) by the number of assets; multiplexing all
//! instances over *one* mesh lets every message produced in the same
//! protocol step share a single frame and a single tag.
//!
//! This module provides the sans-io half of that story:
//!
//! - a **batch entry codec**: a sequence of `(instance, payload)` entries,
//!   encoded as `[u16 count]` followed by `count` entries of
//!   `[u16 instance][u32 len][len bytes]` (big-endian). `delphi-net` wraps
//!   exactly this sequence in its authenticated v2 frames, and [`Mux`] uses
//!   it as the payload of simulator messages, so simulated batched bytes
//!   equal TCP batched bytes.
//! - [`Mux`]: a [`Protocol`] combinator that drives `k` instances of an
//!   inner protocol as one state machine, coalescing every envelope the
//!   instances emit in one step into one batched envelope per destination.
//!
//! Malformed batch payloads (Byzantine senders) decode to [`WireError`] and
//! are ignored, per the [`Protocol`] contract.

use bytes::{BufMut, Bytes, BytesMut};

use crate::wire::WireError;
use crate::{Envelope, InstanceId, NodeId, Protocol, Recipient};

/// Bytes of batch-payload overhead per entry: 2-byte instance id plus a
/// 4-byte length prefix.
pub const BATCH_ENTRY_OVERHEAD_BYTES: usize = 6;

/// Bytes of batch-payload overhead per batch: the 2-byte entry count.
pub const BATCH_COUNT_BYTES: usize = 2;

/// Encoded length of a batch of entries with the given payload lengths.
pub fn batch_len(payload_lens: impl IntoIterator<Item = usize>) -> usize {
    BATCH_COUNT_BYTES
        + payload_lens.into_iter().map(|l| BATCH_ENTRY_OVERHEAD_BYTES + l).sum::<usize>()
}

/// Encodes `(instance, payload)` entries into one batch payload.
///
/// # Panics
///
/// Panics if `entries` holds more than `u16::MAX` entries or an entry
/// exceeds `u32::MAX` bytes (unreachable for any protocol in this
/// workspace).
pub fn encode_batch(entries: &[(InstanceId, Bytes)]) -> Bytes {
    let count = u16::try_from(entries.len()).expect("batch entry count fits u16");
    let mut buf = BytesMut::with_capacity(batch_len(entries.iter().map(|(_, p)| p.len())));
    buf.put_u16(count);
    for (instance, payload) in entries {
        buf.put_u16(instance.0);
        buf.put_u32(u32::try_from(payload.len()).expect("entry length fits u32"));
        buf.put_slice(payload);
    }
    buf.freeze()
}

/// Decodes a batch payload back into `(instance, payload)` entries.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if the input ends mid-entry,
/// [`WireError::LengthOutOfBounds`] if an entry's declared length exceeds
/// the remaining input, and [`WireError::TrailingBytes`] if bytes remain
/// after the declared entry count — all expected conditions on
/// Byzantine-controlled input.
pub fn decode_batch(buf: &[u8]) -> Result<Vec<(InstanceId, Bytes)>, WireError> {
    let mut rest = buf;
    let count = take_u16(&mut rest)?;
    let mut entries = Vec::with_capacity(usize::from(count).min(rest.len() / 2 + 1));
    for _ in 0..count {
        let instance = InstanceId(take_u16(&mut rest)?);
        let len = take_u32(&mut rest)? as usize;
        if len > rest.len() {
            return Err(WireError::LengthOutOfBounds);
        }
        let (payload, tail) = rest.split_at(len);
        entries.push((instance, Bytes::copy_from_slice(payload)));
        rest = tail;
    }
    if !rest.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(entries)
}

/// A validated, borrowed view of a batch payload: the zero-copy sibling of
/// [`decode_batch`].
///
/// [`decode_batch_ref`] validates the whole structure up front (rejecting
/// exactly what the owned decoder rejects, with the same error), then
/// [`BatchEntriesRef::iter`] yields `(instance, payload)` entries as slices
/// into the input — no per-entry allocation, no copies. `to_owned` exists
/// for the protocol boundary, where state must outlive the frame.
#[derive(Clone, Copy, Debug)]
pub struct BatchEntriesRef<'a> {
    /// Entry bytes (everything after the count), pre-validated.
    entries: &'a [u8],
    count: u16,
}

/// Parses a borrowed [`BatchEntriesRef`] view of a batch payload.
///
/// # Errors
///
/// Identical to [`decode_batch`]: the two decoders accept and reject
/// exactly the same inputs (property-tested).
pub fn decode_batch_ref(buf: &[u8]) -> Result<BatchEntriesRef<'_>, WireError> {
    let mut rest = buf;
    let count = take_u16(&mut rest)?;
    let entries = rest;
    for _ in 0..count {
        let _instance = take_u16(&mut rest)?;
        let len = take_u32(&mut rest)? as usize;
        if len > rest.len() {
            return Err(WireError::LengthOutOfBounds);
        }
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(BatchEntriesRef { entries, count })
}

impl<'a> BatchEntriesRef<'a> {
    /// Number of entries in the batch.
    pub fn len(&self) -> usize {
        usize::from(self.count)
    }

    /// Whether the batch carries no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the entries as borrowed slices.
    pub fn iter(&self) -> BatchEntryIter<'a> {
        BatchEntryIter { rest: self.entries, remaining: self.count }
    }

    /// Materializes owned entries (the protocol-boundary escape hatch).
    pub fn to_owned_entries(&self) -> Vec<(InstanceId, Bytes)> {
        self.iter().map(|(id, p)| (id, Bytes::copy_from_slice(p))).collect()
    }
}

/// Iterator over a pre-validated [`BatchEntriesRef`].
#[derive(Clone, Debug)]
pub struct BatchEntryIter<'a> {
    rest: &'a [u8],
    remaining: u16,
}

impl<'a> Iterator for BatchEntryIter<'a> {
    type Item = (InstanceId, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // The view was validated at parse time; these bounds checks are
        // unreachable but keep the iterator panic-free on principle.
        let instance = InstanceId(take_u16(&mut self.rest).ok()?);
        let len = take_u32(&mut self.rest).ok()? as usize;
        if len > self.rest.len() {
            self.remaining = 0;
            return None;
        }
        let (payload, tail) = self.rest.split_at(len);
        self.rest = tail;
        Some((instance, payload))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::from(self.remaining), Some(usize::from(self.remaining)))
    }
}

fn take_u16(rest: &mut &[u8]) -> Result<u16, WireError> {
    let Some((head, tail)) = rest.split_first_chunk::<2>() else {
        return Err(WireError::Truncated);
    };
    *rest = tail;
    Ok(u16::from_be_bytes(*head))
}

fn take_u32(rest: &mut &[u8]) -> Result<u32, WireError> {
    let Some((head, tail)) = rest.split_first_chunk::<4>() else {
        return Err(WireError::Truncated);
    };
    *rest = tail;
    Ok(u32::from_be_bytes(*head))
}

/// Routes per-instance envelope bursts into per-destination entry lists:
/// broadcasts expand to every node but `me`, and point-to-point envelopes
/// to out-of-range destinations are dropped, exactly as transports do.
///
/// Shared by [`Mux`] (simulator path) and `delphi-net`'s runner (TCP
/// path), so the two transports can never diverge on routing semantics.
pub fn route_bursts(
    bursts: Vec<(InstanceId, Vec<Envelope>)>,
    n: usize,
    me: NodeId,
) -> Vec<Vec<(InstanceId, Bytes)>> {
    route_bursts_by(bursts, n, me)
}

/// [`route_bursts`] into caller-owned scratch buffers: `per_dest` is
/// resized to `n`, cleared, and refilled, so a steady-state sender (the
/// session layer flushing step after step) reuses one set of routing
/// buffers instead of allocating `n` fresh `Vec`s per step.
pub fn route_bursts_into(
    bursts: Vec<(InstanceId, Vec<Envelope>)>,
    n: usize,
    me: NodeId,
    per_dest: &mut Vec<Vec<(InstanceId, Bytes)>>,
) {
    route_bursts_by_into(bursts, n, me, per_dest);
}

/// Id-generic burst router behind [`route_bursts`] and the epoch layer's
/// [`route_epoch_bursts`](crate::epoch::route_epoch_bursts): one routing
/// semantics, whatever the instance address type.
pub(crate) fn route_bursts_by<K: Copy>(
    bursts: Vec<(K, Vec<Envelope>)>,
    n: usize,
    me: NodeId,
) -> Vec<Vec<(K, Bytes)>> {
    let mut per_dest: Vec<Vec<(K, Bytes)>> = Vec::new();
    route_bursts_by_into(bursts, n, me, &mut per_dest);
    per_dest
}

/// [`route_bursts_by`] into caller-owned scratch: `per_dest` is resized to
/// `n` and its inner vectors cleared and refilled, so a steady-state
/// sender (the session layer flushing step after step) reuses one set of
/// routing buffers instead of allocating `n` fresh `Vec`s per step.
pub(crate) fn route_bursts_by_into<K: Copy>(
    bursts: Vec<(K, Vec<Envelope>)>,
    n: usize,
    me: NodeId,
    per_dest: &mut Vec<Vec<(K, Bytes)>>,
) {
    per_dest.truncate(n);
    for entries in per_dest.iter_mut() {
        entries.clear();
    }
    per_dest.resize_with(n, Vec::new);
    for (instance, envelopes) in bursts {
        for env in envelopes {
            match env.to {
                Recipient::All => {
                    for (dest, entries) in per_dest.iter_mut().enumerate() {
                        if dest != me.index() {
                            entries.push((instance, env.payload.clone()));
                        }
                    }
                }
                Recipient::One(dest) if dest.index() < n => {
                    per_dest[dest.index()].push((instance, env.payload));
                }
                Recipient::One(_) => {} // out-of-range: drop silently
            }
        }
    }
}

/// Drives `k` instances of an inner protocol as one multiplexed state
/// machine.
///
/// Instance `i` of the vector is addressed as [`InstanceId`]`(i)`. Every
/// envelope the instances emit during one `start()`/`on_message()` step is
/// coalesced into at most one batched envelope per destination, so a
/// transport that charges per message (the simulator) or per frame
/// (`delphi-net`) pays its overhead once per step per peer instead of once
/// per instance.
///
/// The combined output is the vector of instance outputs, available once
/// every instance has produced one.
///
/// # Example
///
/// Two trivial echo-counting instances multiplexed over a 2-node mesh:
///
/// ```
/// use bytes::Bytes;
/// use delphi_primitives::{mux::Mux, Envelope, NodeId, Protocol};
///
/// struct Ping { id: NodeId, got: usize }
/// impl Protocol for Ping {
///     type Output = usize;
///     fn node_id(&self) -> NodeId { self.id }
///     fn n(&self) -> usize { 2 }
///     fn start(&mut self) -> Vec<Envelope> {
///         vec![Envelope::to_all(Bytes::from_static(b"ping"))]
///     }
///     fn on_message(&mut self, _: NodeId, p: &[u8]) -> Vec<Envelope> {
///         if p == b"ping" { self.got += 1; }
///         Vec::new()
///     }
///     fn output(&self) -> Option<usize> { (self.got >= 1).then_some(self.got) }
/// }
///
/// let mut a = Mux::new(vec![
///     Ping { id: NodeId(0), got: 0 },
///     Ping { id: NodeId(0), got: 0 },
/// ]);
/// let mut b = Mux::new(vec![
///     Ping { id: NodeId(1), got: 0 },
///     Ping { id: NodeId(1), got: 0 },
/// ]);
/// // Both instances' pings share one envelope per destination.
/// let out = a.start();
/// assert_eq!(out.len(), 1);
/// b.start();
/// b.on_message(NodeId(0), &out[0].payload);
/// assert_eq!(b.output(), Some(vec![1, 1]));
/// ```
#[derive(Debug)]
pub struct Mux<P> {
    instances: Vec<P>,
}

impl<P: Protocol> Mux<P> {
    /// Wraps `instances` (instance `i` becomes [`InstanceId`]`(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty, holds more than `u16::MAX + 1`
    /// instances, or the instances disagree on node identity or system
    /// size.
    pub fn new(instances: Vec<P>) -> Mux<P> {
        assert!(!instances.is_empty(), "mux needs at least one instance");
        assert!(instances.len() <= usize::from(u16::MAX) + 1, "instance ids are u16");
        let (me, n) = (instances[0].node_id(), instances[0].n());
        for p in &instances {
            assert_eq!(p.node_id(), me, "instances disagree on node id");
            assert_eq!(p.n(), n, "instances disagree on system size");
        }
        Mux { instances }
    }

    /// The multiplexed instances, in id order.
    pub fn instances(&self) -> &[P] {
        &self.instances
    }

    /// Coalesces per-instance envelope bursts into one batched envelope per
    /// destination.
    fn coalesce(&self, bursts: Vec<(InstanceId, Vec<Envelope>)>) -> Vec<Envelope> {
        route_bursts(bursts, self.n(), self.node_id())
            .into_iter()
            .enumerate()
            .filter(|(_, entries)| !entries.is_empty())
            .map(|(dest, entries)| Envelope::to_one(NodeId(dest as u16), encode_batch(&entries)))
            .collect()
    }
}

impl<P: Protocol> Protocol for Mux<P> {
    type Output = Vec<P::Output>;

    fn node_id(&self) -> NodeId {
        self.instances[0].node_id()
    }

    fn n(&self) -> usize {
        self.instances[0].n()
    }

    fn start(&mut self) -> Vec<Envelope> {
        let bursts: Vec<_> = self
            .instances
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (InstanceId(i as u16), p.start()))
            .collect();
        self.coalesce(bursts)
    }

    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<Envelope> {
        // Borrowed decode: entries are slices into `payload`, validated up
        // front and handed to the instances without a single allocation.
        let Ok(entries) = decode_batch_ref(payload) else {
            return Vec::new(); // malformed batch: ignore, never panic
        };
        let mut bursts = Vec::new();
        for (instance, entry) in entries.iter() {
            let Some(p) = self.instances.get_mut(instance.index()) else {
                continue; // unknown instance: ignore the entry
            };
            bursts.push((instance, p.on_message(from, entry)));
        }
        self.coalesce(bursts)
    }

    fn output(&self) -> Option<Vec<P::Output>> {
        self.instances.iter().map(|p| p.output()).collect()
    }

    fn is_finished(&self) -> bool {
        self.instances.iter().all(|p| p.is_finished())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip() {
        let entries = vec![
            (InstanceId(0), Bytes::from_static(b"alpha")),
            (InstanceId(7), Bytes::from_static(b"")),
            (InstanceId(65535), Bytes::from_static(b"omega")),
        ];
        let encoded = encode_batch(&entries);
        assert_eq!(encoded.len(), batch_len([5, 0, 5]));
        assert_eq!(decode_batch(&encoded).unwrap(), entries);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let encoded = encode_batch(&[]);
        assert_eq!(encoded.len(), BATCH_COUNT_BYTES);
        assert_eq!(decode_batch(&encoded).unwrap(), Vec::new());
    }

    #[test]
    fn truncated_batches_rejected() {
        let encoded = encode_batch(&[(InstanceId(1), Bytes::from_static(b"payload"))]);
        assert_eq!(decode_batch(&[]), Err(WireError::Truncated));
        for cut in 1..encoded.len() {
            let err = decode_batch(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::LengthOutOfBounds),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_entry_length_rejected() {
        // Declares a 100-byte entry with 3 bytes available.
        let mut bad = vec![0, 1, 0, 0, 0, 0, 0, 100];
        bad.extend_from_slice(b"abc");
        assert_eq!(decode_batch(&bad), Err(WireError::LengthOutOfBounds));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode_batch(&[(InstanceId(0), Bytes::from_static(b"x"))]).to_vec();
        encoded.push(0xee);
        assert_eq!(decode_batch(&encoded), Err(WireError::TrailingBytes));
    }

    #[test]
    fn huge_declared_count_with_no_entries_rejected_without_allocation() {
        // count = u16::MAX but no entry bytes: must fail fast, not allocate
        // 65 535 slots up front.
        assert_eq!(decode_batch(&[0xff, 0xff]), Err(WireError::Truncated));
        assert_eq!(decode_batch_ref(&[0xff, 0xff]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn borrowed_batch_view_matches_owned_decoder() {
        let entries = vec![
            (InstanceId(0), Bytes::from_static(b"alpha")),
            (InstanceId(7), Bytes::from_static(b"")),
            (InstanceId(65535), Bytes::from_static(b"omega")),
        ];
        let encoded = encode_batch(&entries);
        let view = decode_batch_ref(&encoded).unwrap();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.to_owned_entries(), entries);
        let borrowed: Vec<(InstanceId, &[u8])> = view.iter().collect();
        assert_eq!(borrowed[0], (InstanceId(0), &b"alpha"[..]));
        assert_eq!(view.iter().size_hint(), (3, Some(3)));
        // Empty batches too.
        let empty = encode_batch(&[]);
        assert!(decode_batch_ref(&empty).unwrap().is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Round-trip equivalence: the borrowed view materializes exactly
        /// what the owned decoder produces, on arbitrary batches.
        #[test]
        fn prop_borrowed_batch_roundtrip_equivalence(
            entries in proptest::collection::vec(
                (proptest::prelude::any::<u16>(),
                 proptest::collection::vec(proptest::prelude::any::<u8>(), 0..24)),
                0..12,
            )
        ) {
            let entries: Vec<(InstanceId, Bytes)> = entries
                .into_iter()
                .map(|(id, p)| (InstanceId(id), Bytes::from(p)))
                .collect();
            let encoded = encode_batch(&entries);
            let owned = decode_batch(&encoded).unwrap();
            let view = decode_batch_ref(&encoded).unwrap();
            proptest::prop_assert_eq!(view.to_owned_entries(), owned);
        }

        /// Error equivalence: truncations and arbitrary garbage must fail
        /// (or pass) identically in both decoders.
        #[test]
        fn prop_borrowed_batch_error_equivalence(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
            cut in 0usize..64,
        ) {
            let owned = decode_batch(&bytes);
            let borrowed = decode_batch_ref(&bytes).map(|v| v.to_owned_entries());
            proptest::prop_assert_eq!(owned, borrowed);
            // Also on a truncated prefix of the same input.
            let cut = cut.min(bytes.len());
            let owned = decode_batch(&bytes[..cut]);
            let borrowed = decode_batch_ref(&bytes[..cut]).map(|v| v.to_owned_entries());
            proptest::prop_assert_eq!(owned, borrowed);
        }
    }

    /// Broadcasts `rounds` numbered waves, one per message wave received.
    struct Wave {
        id: NodeId,
        n: usize,
        rounds: u8,
        seen: usize,
        sent: u8,
    }

    impl Wave {
        fn new(id: NodeId, n: usize, rounds: u8) -> Wave {
            Wave { id, n, rounds, seen: 0, sent: 0 }
        }
    }

    impl Protocol for Wave {
        type Output = usize;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn n(&self) -> usize {
            self.n
        }
        fn start(&mut self) -> Vec<Envelope> {
            self.sent = 1;
            vec![Envelope::to_all(Bytes::from_static(b"w"))]
        }
        fn on_message(&mut self, _: NodeId, _: &[u8]) -> Vec<Envelope> {
            self.seen += 1;
            if self.seen % (self.n - 1) == 0 && self.sent < self.rounds {
                self.sent += 1;
                vec![Envelope::to_all(Bytes::from_static(b"w"))]
            } else {
                Vec::new()
            }
        }
        fn output(&self) -> Option<usize> {
            (self.seen >= usize::from(self.rounds) * (self.n - 1)).then_some(self.seen)
        }
    }

    fn mux_nodes(n: usize, k: usize, rounds: u8) -> Vec<Mux<Wave>> {
        NodeId::all(n)
            .map(|id| Mux::new((0..k).map(|_| Wave::new(id, n, rounds)).collect()))
            .collect()
    }

    /// Hand-delivers envelopes until quiescence; returns messages delivered.
    fn run_mesh(nodes: &mut [Mux<Wave>]) -> usize {
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, Bytes)> =
            std::collections::VecDeque::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let from = NodeId(i as u16);
            for env in node.start() {
                let Recipient::One(dest) = env.to else { panic!("mux emits to_one") };
                queue.push_back((from, dest, env.payload));
            }
        }
        let mut delivered = 0;
        while let Some((from, to, payload)) = queue.pop_front() {
            delivered += 1;
            for env in nodes[to.index()].on_message(from, &payload) {
                let Recipient::One(dest) = env.to else { panic!("mux emits to_one") };
                queue.push_back((to, dest, env.payload));
            }
        }
        delivered
    }

    #[test]
    fn mux_coalesces_instances_into_one_message_per_destination() {
        let n = 4;
        let k = 3;
        let mut nodes = mux_nodes(n, k, 2);
        let delivered = run_mesh(&mut nodes);
        for node in &nodes {
            assert_eq!(node.output(), Some(vec![6, 6, 6]));
            assert!(node.is_finished());
        }
        // Unmultiplexed, 3 instances × 2 waves × 4 nodes × 3 peers = 72
        // messages; the mux coalesces the k instances' simultaneous waves.
        assert_eq!(delivered, 24, "one batched message per step per peer");
    }

    #[test]
    fn mux_ignores_malformed_and_unknown_instance_entries() {
        let mut node = Mux::new(vec![Wave::new(NodeId(0), 2, 1)]);
        node.start();
        assert!(node.on_message(NodeId(1), b"\xff\xff\xff").is_empty(), "garbage ignored");
        // A valid batch addressed to a nonexistent instance is ignored too.
        let foreign = encode_batch(&[(InstanceId(9), Bytes::from_static(b"w"))]);
        assert!(node.on_message(NodeId(1), &foreign).is_empty());
        assert_eq!(node.output(), None, "unknown-instance entry must not advance state");
    }

    #[test]
    fn mux_routes_point_to_point_entries() {
        /// Sends instance-distinct payloads to node 1 only.
        struct OneShot {
            id: NodeId,
            tag: u8,
            got: Option<u8>,
        }
        impl Protocol for OneShot {
            type Output = u8;
            fn node_id(&self) -> NodeId {
                self.id
            }
            fn n(&self) -> usize {
                3
            }
            fn start(&mut self) -> Vec<Envelope> {
                if self.id == NodeId(0) {
                    vec![Envelope::to_one(NodeId(1), Bytes::copy_from_slice(&[self.tag]))]
                } else {
                    Vec::new()
                }
            }
            fn on_message(&mut self, _: NodeId, p: &[u8]) -> Vec<Envelope> {
                self.got = Some(p[0]);
                Vec::new()
            }
            fn output(&self) -> Option<u8> {
                self.got
            }
        }
        let mut sender = Mux::new(vec![
            OneShot { id: NodeId(0), tag: 10, got: None },
            OneShot { id: NodeId(0), tag: 20, got: None },
        ]);
        let mut receiver = Mux::new(vec![
            OneShot { id: NodeId(1), tag: 0, got: None },
            OneShot { id: NodeId(1), tag: 0, got: None },
        ]);
        let out = sender.start();
        assert_eq!(out.len(), 1, "both point-to-point entries share one envelope");
        assert_eq!(out[0].to, Recipient::One(NodeId(1)));
        receiver.start();
        receiver.on_message(NodeId(0), &out[0].payload);
        assert_eq!(receiver.output(), Some(vec![10, 20]), "entries routed per instance");
    }

    #[test]
    #[should_panic(expected = "disagree on node id")]
    fn mux_rejects_mismatched_identities() {
        let _ = Mux::new(vec![Wave::new(NodeId(0), 2, 1), Wave::new(NodeId(1), 2, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn mux_rejects_empty_instance_list() {
        let _: Mux<Wave> = Mux::new(Vec::new());
    }
}
