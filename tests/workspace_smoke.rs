//! Workspace smoke test: the `examples/quickstart.rs` flow as a CI-run test.
//!
//! Exercises the full primitives → core → sim stack end-to-end — config
//! construction, one `DelphiNode` per party, a deterministic simulated
//! network — so a regression anywhere in that pipeline fails `cargo test`
//! even if the narrower unit tests miss it.

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::NodeId;
use delphi::sim::{Simulation, Topology};

/// n = 4 (t = 1) Delphi round-trip under `delphi-sim`, seed-pinned.
#[test]
fn quickstart_n4_delphi_round_trip() {
    let readings = [21.28, 21.35, 21.31, 21.24];
    let n = readings.len();
    let cfg = DelphiConfig::builder(n)
        .space(-40.0, 60.0)
        .rho0(0.1)
        .delta_max(4.0)
        .epsilon(0.1)
        .build()
        .expect("valid config");
    assert_eq!(cfg.t(), 1, "n = 4 tolerates exactly one fault");

    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, readings[id.index()]).boxed())
        .collect();
    let report = Simulation::new(Topology::lan(n)).seed(42).run(nodes);

    // Liveness: every node terminated with an output.
    assert!(report.completion_ms().is_some(), "protocol did not finish");
    let outputs: Vec<f64> =
        report.outputs.iter().map(|o| o.expect("every honest node outputs")).collect();
    assert_eq!(outputs.len(), n);

    // ε-agreement: outputs within ε of each other.
    let lo = outputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = outputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi - lo <= cfg.epsilon() + 1e-12, "spread {} > ε", hi - lo);

    // Validity: outputs inside the range of honest inputs (all honest here).
    let in_lo = readings.iter().copied().fold(f64::INFINITY, f64::min);
    let in_hi = readings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        lo >= in_lo - cfg.epsilon() && hi <= in_hi + cfg.epsilon(),
        "outputs [{lo}, {hi}] escape honest input range [{in_lo}, {in_hi}] + ε",
    );

    // Determinism: same seed, same everything.
    let nodes2 = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, readings[id.index()]).boxed())
        .collect();
    let report2 = Simulation::new(Topology::lan(n)).seed(42).run(nodes2);
    let outputs2: Vec<f64> =
        report2.outputs.iter().map(|o| o.expect("deterministic rerun outputs")).collect();
    assert_eq!(outputs, outputs2, "simulation is not deterministic under a fixed seed");
    assert_eq!(report.completion_ms(), report2.completion_ms());
}
