//! Multi-asset oracle workload: many concurrent price feeds.
//!
//! A DORA-style oracle network does not agree on one price — it runs one
//! agreement instance per listed asset, every minute, over the same node
//! set. This module generalizes the single-feed [`BtcFeed`] to a named
//! basket of feeds, each with its own price level, volatility, and
//! quote-range law, producing per-asset node inputs for one simulated
//! minute at a time.
//!
//! The multi-asset scenario layers downstream (the sharded simulator runs
//! in `delphi-sim`, the multiplexed TCP runner in `delphi-net`, and the
//! batched-bandwidth reporting in `fig6b_bandwidth_aws`) all consume this
//! driver.

use crate::btc::{BtcFeed, BtcFeedConfig, MinuteQuote};

/// One named asset and its feed parameters.
#[derive(Clone, Debug)]
pub struct AssetConfig {
    /// Ticker-style asset name (unique within a basket).
    pub name: String,
    /// Feed parameters (price level, volatility, quote-range law).
    pub feed: BtcFeedConfig,
}

impl AssetConfig {
    /// An asset whose quote range scales with its price level, keeping the
    /// paper's BTC range-to-price ratio (≈ 0.1%).
    pub fn scaled(name: &str, start_price: f64) -> AssetConfig {
        let btc = BtcFeedConfig::default();
        AssetConfig {
            name: name.to_string(),
            feed: BtcFeedConfig {
                start_price,
                range_scale: btc.range_scale * start_price / btc.start_price,
                ..btc
            },
        }
    }
}

/// A basket of concurrently quoted assets.
#[derive(Clone, Debug)]
pub struct MultiAssetConfig {
    /// The assets, in instance-id order.
    pub assets: Vec<AssetConfig>,
}

impl MultiAssetConfig {
    /// A four-asset reference basket (BTC at the paper's level plus three
    /// price-scaled feeds), the default multi-asset scenario.
    pub fn default_basket() -> MultiAssetConfig {
        MultiAssetConfig {
            assets: vec![
                AssetConfig { name: "BTC".into(), feed: BtcFeedConfig::default() },
                AssetConfig::scaled("ETH", 2_000.0),
                AssetConfig::scaled("SOL", 150.0),
                AssetConfig::scaled("XAU", 1_900.0),
            ],
        }
    }

    /// A basket of `k` price-scaled synthetic assets, for sweeps over the
    /// number of concurrent feeds.
    pub fn synthetic(k: usize) -> MultiAssetConfig {
        MultiAssetConfig {
            assets: (0..k)
                .map(|i| AssetConfig::scaled(&format!("AST{i}"), 100.0 * (i + 1) as f64))
                .collect(),
        }
    }
}

/// One asset's slice of a simulated minute.
#[derive(Clone, Debug)]
pub struct AssetMinute {
    /// The asset's name.
    pub name: String,
    /// The exchanges' quotes this minute.
    pub quote: MinuteQuote,
    /// One input per oracle node (median of its sampled exchanges).
    pub inputs: Vec<f64>,
}

/// Feed generator for a whole basket.
///
/// # Example
///
/// ```
/// use delphi_workloads::{MultiAssetConfig, MultiAssetFeed};
///
/// let mut feed = MultiAssetFeed::new(MultiAssetConfig::default_basket(), 7);
/// let minute = feed.next_minute(16);
/// assert_eq!(minute.len(), 4);
/// assert_eq!(minute[0].name, "BTC");
/// assert_eq!(minute[0].inputs.len(), 16);
/// ```
#[derive(Debug)]
pub struct MultiAssetFeed {
    feeds: Vec<(String, BtcFeed)>,
}

impl MultiAssetFeed {
    /// Creates the basket's feeds; asset `i` is seeded with `seed + i` so
    /// assets are mutually independent but the whole basket replays from
    /// one seed.
    ///
    /// # Panics
    ///
    /// Panics on an empty basket, duplicate asset names, or a degenerate
    /// feed configuration (see [`BtcFeed::new`]).
    pub fn new(cfg: MultiAssetConfig, seed: u64) -> MultiAssetFeed {
        assert!(!cfg.assets.is_empty(), "basket needs at least one asset");
        let mut names: Vec<&str> = cfg.assets.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cfg.assets.len(), "asset names must be unique");
        let feeds = cfg
            .assets
            .into_iter()
            .enumerate()
            .map(|(i, a)| (a.name, BtcFeed::new(a.feed, seed.wrapping_add(i as u64))))
            .collect();
        MultiAssetFeed { feeds }
    }

    /// Number of assets in the basket.
    pub fn len(&self) -> usize {
        self.feeds.len()
    }

    /// Whether the basket is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.feeds.is_empty()
    }

    /// Asset names, in instance-id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.feeds.iter().map(|(name, _)| name.as_str())
    }

    /// Advances every asset one minute and draws inputs for `n` oracle
    /// nodes per asset.
    pub fn next_minute(&mut self, n: usize) -> Vec<AssetMinute> {
        self.feeds
            .iter_mut()
            .map(|(name, feed)| {
                let quote = feed.next_minute();
                let inputs = feed.node_inputs(&quote, n);
                AssetMinute { name: name.clone(), quote, inputs }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_basket_produces_per_asset_inputs_within_hull() {
        let mut feed = MultiAssetFeed::new(MultiAssetConfig::default_basket(), 1);
        assert_eq!(feed.len(), 4);
        assert!(!feed.is_empty());
        let minute = feed.next_minute(12);
        assert_eq!(minute.len(), 4);
        for asset in &minute {
            assert_eq!(asset.inputs.len(), 12);
            let lo = asset.quote.exchange_prices.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = asset.quote.exchange_prices.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for v in &asset.inputs {
                assert!(*v >= lo && *v <= hi, "{}: {v} outside [{lo}, {hi}]", asset.name);
            }
        }
    }

    #[test]
    fn assets_have_distinct_price_levels_and_proportional_ranges() {
        let mut feed = MultiAssetFeed::new(MultiAssetConfig::default_basket(), 2);
        let minute = feed.next_minute(4);
        let names: Vec<&str> = feed.names().collect();
        assert_eq!(names, ["BTC", "ETH", "SOL", "XAU"]);
        assert!(minute[0].quote.truth > 10.0 * minute[1].quote.truth, "BTC ≫ ETH");
        // Range-to-price ratios stay within an order of magnitude of each
        // other: the scaled configuration, not one absolute range law.
        let ratios: Vec<f64> = minute.iter().map(|a| a.quote.range() / a.quote.truth).collect();
        for r in &ratios {
            assert!(*r > 0.0 && *r < 0.05, "ratio {r}");
        }
    }

    #[test]
    fn basket_determinism_per_seed() {
        let mut a = MultiAssetFeed::new(MultiAssetConfig::synthetic(3), 9);
        let mut b = MultiAssetFeed::new(MultiAssetConfig::synthetic(3), 9);
        let (ma, mb) = (a.next_minute(8), b.next_minute(8));
        for (x, y) in ma.iter().zip(&mb) {
            assert_eq!(x.inputs, y.inputs);
        }
        let mut c = MultiAssetFeed::new(MultiAssetConfig::synthetic(3), 10);
        assert_ne!(ma[0].inputs, c.next_minute(8)[0].inputs);
    }

    #[test]
    fn assets_are_mutually_independent() {
        // Same basket, but the per-asset seeds differ, so two assets with
        // identical configs still quote differently.
        let cfg = MultiAssetConfig {
            assets: vec![AssetConfig::scaled("A", 500.0), AssetConfig::scaled("B", 500.0)],
        };
        let mut feed = MultiAssetFeed::new(cfg, 4);
        let minute = feed.next_minute(4);
        assert_ne!(minute[0].quote.exchange_prices, minute[1].quote.exchange_prices);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_asset_names_rejected() {
        let cfg = MultiAssetConfig {
            assets: vec![AssetConfig::scaled("X", 1.0), AssetConfig::scaled("X", 2.0)],
        };
        let _ = MultiAssetFeed::new(cfg, 0);
    }

    #[test]
    #[should_panic(expected = "at least one asset")]
    fn empty_basket_rejected() {
        let _ = MultiAssetFeed::new(MultiAssetConfig { assets: Vec::new() }, 0);
    }
}
