//! Minimal `Cargo.toml` reader for the dependency-graph rules.
//!
//! Dependency-free TOML subset, in the same spirit as the cluster-config
//! parser in `delphi-net`: section headers, `key = value` lines, `#`
//! comments. It extracts exactly what the rules need — the package name
//! and the names of `[dependencies]` vs `[dev-dependencies]` entries —
//! and tolerates everything else.

/// The slice of a crate manifest the rules consume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Names (and line numbers) of `[dependencies]` entries.
    pub deps: Vec<(String, u32)>,
    /// Names of `[dev-dependencies]` entries.
    pub dev_deps: Vec<String>,
}

/// Parses the manifest text. Unknown sections and values are ignored;
/// this never fails — a manifest the parser cannot read yields an empty
/// [`Manifest`], which the rules treat as dependency-free.
pub fn parse(text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut out = Manifest::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim_matches('[').trim();
            section = match header {
                "package" => Section::Package,
                "dependencies" => Section::Deps,
                "dev-dependencies" => Section::DevDeps,
                _ => {
                    // `[dependencies.foo]`-style headers name one entry.
                    if let Some(dep) = header.strip_prefix("dependencies.") {
                        out.deps.push((unquote(dep), line_no));
                    } else if let Some(dep) = header.strip_prefix("dev-dependencies.") {
                        out.dev_deps.push(unquote(dep));
                    }
                    Section::Other
                }
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        // `foo.workspace = true` names the dependency `foo`.
        let key = unquote(key.trim().split('.').next().unwrap_or(""));
        match section {
            Section::Package if key == "name" => out.name = unquote(value.trim()),
            Section::Deps => out.deps.push((key, line_no)),
            Section::DevDeps => out.dev_deps.push(key),
            _ => {}
        }
    }
    out
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_name_and_dependency_kinds() {
        let m = parse(
            r#"
            [package]
            name = "delphi-net"   # the net crate
            edition.workspace = true

            [dependencies]
            bytes = { workspace = true }
            tokio = { workspace = true }

            [dev-dependencies]
            delphi-core = { workspace = true }

            [dependencies.extra]
            path = "nowhere"

            [lints]
            workspace = true
            "#,
        );
        assert_eq!(m.name, "delphi-net");
        let dep_names: Vec<&str> = m.deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(dep_names, ["bytes", "tokio", "extra"]);
        assert_eq!(m.dev_deps, ["delphi-core"]);
    }

    #[test]
    fn garbage_yields_empty_manifest() {
        assert_eq!(parse("]]]] = [ not toml"), Manifest::default());
    }
}
