#![forbid(unsafe_code)]
//! A real Delphi cluster on localhost, driven by the deployment harness:
//! a TOML cluster config (`delphi::net::config`) describes the nodes, and
//! the run happens over HMAC-authenticated sockets — the same shape as
//! the paper's testbeds.
//!
//! If the `delphi-node` binary is available next to this example's
//! executable (`cargo build -p delphi-bench --bin delphi-node` puts it
//! there), the cluster runs as **one OS process per node** through the
//! `delphi::net::cluster` launcher. Otherwise it falls back to one tokio
//! task per node in this process — same config, same sockets, same
//! frames.
//!
//! Run with: `cargo run --example tcp_cluster`

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::net::cluster::{find_sibling_binary, launch, node_command};
use delphi::net::config::ClusterConfig;
use delphi::net::{run_node, RunOptions};
use delphi::primitives::NodeId;
use delphi::workloads::deployment_inputs;
use delphi_bench::cluster::{reserve_localhost_config, write_temp_config};

const QUOTE_SEED: u64 = 7;
const EPSILON: f64 = 2.0;

/// One process per node, through the real launcher.
fn run_multi_process(
    cfg: &ClusterConfig,
    binary: &std::path::Path,
) -> Result<Vec<(u16, f64)>, Box<dyn std::error::Error>> {
    let path = write_temp_config(cfg, "tcp-cluster-example")?;
    let extra = vec!["--quote-seed".to_string(), QUOTE_SEED.to_string()];
    let commands = (0..cfg.n()).map(|id| node_command(binary, &path, id as u16, &extra)).collect();
    let outcome = launch(commands);
    let _ = std::fs::remove_file(&path);
    let outcome = outcome?;
    for r in &outcome.reports {
        println!(
            "node {}: output {:>11.4}$ in {:>4.0} ms | {} frames / {} bytes sent, {} dropped",
            r.id,
            r.output,
            r.elapsed_ms,
            r.stats.sent_frames,
            r.stats.sent_bytes,
            r.stats.dropped_frames
        );
    }
    Ok(outcome.reports.iter().map(|r| (r.id, r.output)).collect())
}

/// Fallback: one tokio task per node in this process, from the same
/// config.
async fn run_in_process(
    cfg: &ClusterConfig,
) -> Result<Vec<(u16, f64)>, Box<dyn std::error::Error>> {
    let n = cfg.n();
    let protocol_cfg = DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(2.0)
        .delta_max(2000.0)
        .epsilon(EPSILON)
        .build()?;
    let inputs = deployment_inputs(n, QUOTE_SEED);
    let addrs = cfg.addresses();
    let mut handles = Vec::new();
    for id in NodeId::all(n) {
        let keychain = cfg.keychain(id.0)?;
        let node = DelphiNode::new(protocol_cfg.clone(), id, inputs[id.index()]);
        let addrs = addrs.clone();
        handles.push((
            id,
            tokio::spawn(
                async move { run_node(node, keychain, addrs, RunOptions::default()).await },
            ),
        ));
    }
    let mut outputs = Vec::new();
    for (id, h) in handles {
        let (output, stats) = h.await??;
        println!(
            "node {}: input {:>9.2}$ -> output {:>11.4}$ | {} frames / {} bytes sent, {} dropped",
            id.0,
            inputs[id.index()],
            output,
            stats.sent_frames,
            stats.sent_bytes,
            stats.dropped_frames
        );
        outputs.push((id.0, output));
    }
    Ok(outputs)
}

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    // Free loopback ports are reserved by binding and releasing them; the
    // nodes re-bind moments later.
    let cfg = reserve_localhost_config(n);
    println!("cluster config:\n{}", cfg.to_toml());

    let outputs = match find_sibling_binary("delphi-node") {
        Ok(binary) => {
            println!("running one OS process per node via {}\n", binary.display());
            run_multi_process(&cfg, &binary)?
        }
        Err(_) => {
            println!(
                "delphi-node binary not built (cargo build -p delphi-bench --bin delphi-node); \
                 running one tokio task per node instead\n"
            );
            run_in_process(&cfg).await?
        }
    };

    let vals: Vec<f64> = outputs.iter().map(|(_, v)| *v).collect();
    let spread = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - vals.iter().copied().fold(f64::INFINITY, f64::min);
    println!("\noutput spread over real TCP: {spread:.6}$ (ε = {EPSILON}$)");
    assert!(spread <= EPSILON);
    Ok(())
}
