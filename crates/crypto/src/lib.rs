//! From-scratch cryptographic substrate for the Delphi reproduction.
//!
//! The paper's implementation "uses Hash-based Message Authentication Codes
//! (HMAC) with the SHA256 Hash function and shared symmetric keys to
//! implement authenticated channels" (§VI-C). This crate provides exactly
//! that substrate, implemented from first principles so the workspace has
//! no external cryptography dependencies:
//!
//! - [`sha256`]: FIPS 180-4 SHA-256 (validated against NIST test vectors);
//! - [`hmac_sha256`]: RFC 2104 HMAC-SHA256 (validated against RFC 4231
//!   vectors);
//! - [`Keychain`]: pairwise symmetric keys derived from a deployment seed,
//!   giving every ordered pair of nodes a shared MAC key — the paper's
//!   "pairwise authenticated channels";
//! - [`signing`]: HMAC-based attestation "signatures" used by the DORA
//!   layer (§V). These simulate the transferable signatures a production
//!   deployment would implement with Ed25519/BLS; the substitution is
//!   documented in `DESIGN.md` §5 and only the operation *counts and sizes*
//!   matter for the evaluation.
//!
//! # Security note
//!
//! This code is a faithful, tested implementation of the algorithms, but it
//! has not been hardened against side channels and the attestation scheme
//! is deliberately a simulation. Do not reuse outside this reproduction.
//!
//! # Example
//!
//! ```
//! use delphi_crypto::{sha256, hmac_sha256};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(hex(&digest[..4]), "ba7816bf");
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//!
//! fn hex(bytes: &[u8]) -> String {
//!     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hmac;
mod keychain;
pub mod sha256;
pub mod signing;

pub use hmac::{hmac_sha256, HmacKey, HmacSha256};
pub use keychain::{ChannelKey, Keychain, MacError, TAG_LEN};
pub use sha256::{sha256, Sha256, DIGEST_LEN};
