//! RFC 2104 HMAC over SHA-256.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// A reusable HMAC key: the SHA-256 states after absorbing the inner and
/// outer padded key blocks.
///
/// Expanding a key into its `ipad`/`opad` blocks and compressing them costs
/// two SHA-256 compressions — as much as MAC-ing a short message itself.
/// Transports tag every frame under a long-lived pairwise channel key, so
/// precomputing both states once and cloning them per tag halves the
/// per-frame MAC cost (the `Keychain::derive` / per-tag hot path from the
/// micro bench).
///
/// # Example
///
/// ```
/// use delphi_crypto::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"channel-key");
/// let mut mac = key.mac();
/// mac.update(b"message");
/// assert_eq!(mac.finalize(), hmac_sha256(b"channel-key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state after absorbing `key ⊕ ipad`.
    inner: Sha256,
    /// SHA-256 state after absorbing `key ⊕ opad`.
    outer: Sha256,
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The padded-key states are key-equivalent material: anyone holding
        // them can MAC arbitrary messages. Never print them.
        write!(f, "HmacKey(..)")
    }
}

impl HmacKey {
    /// Precomputes the padded-key states for `key`.
    ///
    /// Keys longer than the SHA-256 block size are hashed first, per RFC
    /// 2104.
    pub fn new(key: &[u8]) -> HmacKey {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_block = [0u8; BLOCK_LEN];
        let mut opad_block = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_block[i] = key_block[i] ^ 0x36;
            opad_block[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_block);
        let mut outer = Sha256::new();
        outer.update(&opad_block);
        HmacKey { inner, outer }
    }

    /// Starts a MAC computation from the precomputed states (no key
    /// re-expansion).
    pub fn mac(&self) -> HmacSha256 {
        HmacSha256 { inner: self.inner.clone(), outer: self.outer.clone() }
    }
}

/// Incremental HMAC-SHA256.
///
/// # Example
///
/// ```
/// use delphi_crypto::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"mes");
/// mac.update(b"sage");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Post-`opad` outer state, resumed at finalization.
    outer: Sha256,
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The states embed key-equivalent material; see HmacKey's Debug.
        write!(f, "HmacSha256(..)")
    }
}

impl HmacSha256 {
    /// Creates a MAC instance for `key`.
    ///
    /// For repeated MACs under one key, precompute an [`HmacKey`] and use
    /// [`HmacKey::mac`] instead — it skips the two key-expansion
    /// compressions this constructor pays.
    pub fn new(key: &[u8]) -> HmacSha256 {
        HmacKey::new(key).mac()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC, consuming the instance.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time equality for MAC tags.
///
/// Avoids the obvious early-exit comparison; adequate for this
/// reproduction's threat model (see crate-level security note).
pub(crate) fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    // RFC 4231 test case 2: short key ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    // RFC 4231 test case 4: 25-byte incrementing key, 50-byte 0xcd data.
    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        let data = [0xcd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
    }

    // RFC 4231 test case 6: 131-byte key (forces key hashing).
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaa; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = hmac_sha256(&key, data);
        assert_eq!(hex(&tag), "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
    }

    #[test]
    fn incremental_equals_one_shot() {
        let key = b"delphi-key";
        let msg: Vec<u8> = (0..500u16).map(|i| (i * 7 % 256) as u8).collect();
        let expect = hmac_sha256(key, &msg);
        for chunk_size in [1, 3, 64, 100] {
            let mut mac = HmacSha256::new(key);
            for chunk in msg.chunks(chunk_size) {
                mac.update(chunk);
            }
            assert_eq!(mac.finalize(), expect, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn block_size_key_used_directly() {
        // A 64-byte key is used as-is; 65 bytes is hashed. They must differ
        // from each other and from the truncation.
        let key64 = [0x42; 64];
        let key65 = [0x42; 65];
        assert_ne!(hmac_sha256(&key64, b"x"), hmac_sha256(&key65, b"x"));
    }

    #[test]
    fn precomputed_key_matches_fresh_mac() {
        let key_short = b"delphi";
        let key_long = [0x5a; 131]; // forces key hashing
        for key in [&key_short[..], &key_long[..]] {
            let precomputed = HmacKey::new(key);
            for msg in [&b""[..], b"x", &[0u8; 200]] {
                let mut mac = precomputed.mac();
                mac.update(msg);
                assert_eq!(mac.finalize(), hmac_sha256(key, msg));
            }
        }
    }

    #[test]
    fn precomputed_key_is_reusable() {
        let key = HmacKey::new(b"k");
        let mut a = key.mac();
        a.update(b"first");
        let mut b = key.mac();
        b.update(b"second");
        assert_eq!(a.finalize(), hmac_sha256(b"k", b"first"));
        assert_eq!(b.finalize(), hmac_sha256(b"k", b"second"));
    }

    #[test]
    fn debug_never_prints_key_state() {
        let key = HmacKey::new(b"top-secret-key");
        let mut mac = key.mac();
        mac.update(b"msg");
        let dbg = format!("{key:?} {mac:?}");
        assert_eq!(dbg, "HmacKey(..) HmacSha256(..)");
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
