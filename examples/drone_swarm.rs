#![forbid(unsafe_code)]
//! The paper's CPS application (§VI-B): a drone swarm localizes a car by
//! agreeing on each coordinate with a separate Delphi instance.
//!
//! Run with: `cargo run --example drone_swarm`

use delphi::core::{DelphiConfig, DelphiNode};
use delphi::primitives::{NodeId, Protocol};
use delphi::sim::adversary::Crash;
use delphi::sim::{Simulation, Topology};
use delphi::workloads::{DroneScenario, DroneScenarioConfig};

fn run_axis(
    cfg: &DelphiConfig,
    inputs: &[f64],
    crashed: &[NodeId],
    seed: u64,
    topology: Topology,
) -> (Vec<f64>, f64, f64) {
    let n = cfg.n();
    let nodes: Vec<Box<dyn Protocol<Output = f64>>> = NodeId::all(n)
        .map(|id| {
            if crashed.contains(&id) {
                Box::new(Crash::new(id, n)) as Box<_>
            } else {
                DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed()
            }
        })
        .collect();
    let report = Simulation::new(topology).seed(seed).faulty(crashed).run(nodes);
    assert!(report.all_honest_finished(), "axis agreement stalled");
    (
        report.honest_outputs().copied().collect(),
        report.completion_ms().unwrap_or(f64::NAN),
        report.metrics.total_wire_mib(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 15 drones (one per Raspberry Pi of the paper's testbed), 2 crash.
    let n = 15;
    // §VI-B parameters: ρ0 = ε = 0.5 m, Δ = 50 m.
    let cfg = DelphiConfig::builder(n)
        .space(-10_000.0, 10_000.0)
        .rho0(0.5)
        .delta_max(50.0)
        .epsilon(0.5)
        .build()?;
    println!(
        "drone swarm: n={n} t={} | Δ={}m ρ0={}m ε={}m | {} levels, {} rounds",
        cfg.t(),
        cfg.delta_max(),
        cfg.rho0(),
        cfg.epsilon(),
        cfg.num_levels(),
        cfg.r_max()
    );

    // A car parked at (137.2, -42.8); every drone estimates its position
    // from a detection (Gamma IoU) plus GPS error (Gamma magnitude).
    let truth = (137.2, -42.8);
    let mut scenario = DroneScenario::new(DroneScenarioConfig::default(), truth, 5);
    let (xs, ys) = scenario.axis_inputs(n);
    println!(
        "observations: x in [{:.2}, {:.2}], y in [{:.2}, {:.2}]",
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ys.iter().copied().fold(f64::INFINITY, f64::min),
        ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );

    let crashed = [NodeId(3), NodeId(9)];
    println!("crashed drones: {crashed:?}");

    // One Delphi instance per coordinate, over the bandwidth-limited CPS
    // topology (15 hosts, one process each).
    let (out_x, ms_x, mib_x) = run_axis(&cfg, &xs, &crashed, 21, Topology::cps(n, 15));
    let (out_y, ms_y, mib_y) = run_axis(&cfg, &ys, &crashed, 22, Topology::cps(n, 15));

    let agreed = (out_x[0], out_y[0]);
    println!("agreed position: ({:.3}, {:.3})", agreed.0, agreed.1);
    println!("x axis: {:.0} ms, {:.3} MiB | y axis: {:.0} ms, {:.3} MiB", ms_x, mib_x, ms_y, mib_y);

    // ε-agreement per axis.
    for outs in [&out_x, &out_y] {
        let spread = outs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - outs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread <= cfg.epsilon(), "spread {spread}");
    }
    // The agreed point lands near the car (validity: within the
    // observation hull ± max(ρ0, δ)).
    let err = ((agreed.0 - truth.0).powi(2) + (agreed.1 - truth.1).powi(2)).sqrt();
    println!("distance from ground truth: {err:.3} m");
    assert!(err < 25.0, "agreed point too far from the car");
    Ok(())
}
