#![forbid(unsafe_code)]
//! Regenerates **Fig. 7**: Delphi runtime heatmaps over the agreement
//! ratio `Δ/ε` (controls round count) and the range ratio `δ/ρ0`
//! (controls per-round communication), on both testbeds.
//!
//! Expected shape: on AWS (n = 64) runtime varies mostly **down the
//! columns** (round count dominates); on CPS (n = 85) it varies mostly
//! **across the rows** (per-round volume dominates).
//!
//! `cargo run --release -p delphi-bench --bin fig7_heatmap [--quick]`

use delphi_bench::{quick_mode, run_delphi, spread_inputs, TextTable};
use delphi_core::DelphiConfig;
use delphi_sim::Topology;

/// Runs one heatmap cell; `None` when δ would exceed Δ (the blank cells
/// of the paper's heatmaps).
fn cell(
    n: usize,
    topology: Topology,
    agreement_ratio: f64,
    range_ratio: f64,
    seed: u64,
) -> Option<f64> {
    let epsilon = 1.0;
    let rho0 = 1.0;
    let delta_max = agreement_ratio * epsilon;
    let delta = range_ratio * rho0;
    if delta > delta_max {
        return None;
    }
    let cfg = DelphiConfig::builder(n)
        .space(0.0, 1_000_000.0)
        .rho0(rho0)
        .delta_max(delta_max)
        .epsilon(epsilon)
        .build()
        .ok()?;
    let inputs = spread_inputs(n, 500_000.0, delta);
    Some(run_delphi(&cfg, topology, &inputs, seed).runtime_ms / 1000.0)
}

fn heatmap(
    name: &str,
    n: usize,
    topology: impl Fn() -> Topology,
    agreement_ratios: &[f64],
    range_ratios: &[f64],
    seed0: u64,
) -> Vec<Vec<Option<f64>>> {
    println!("-- {name} (n = {n}; cells in seconds; rows: Δ/ε, cols: δ/ρ0) --");
    let mut header = vec!["agr\\range".to_string()];
    header.extend(range_ratios.iter().map(|r| format!("{r}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    let mut grid = Vec::new();
    for (i, &ar) in agreement_ratios.iter().enumerate() {
        let mut row_cells = vec![format!("{ar}")];
        let mut row = Vec::new();
        for (j, &rr) in range_ratios.iter().enumerate() {
            let v = cell(n, topology(), ar, rr, seed0 + (i * 16 + j) as u64);
            row_cells.push(match v {
                Some(s) => format!("{s:.2}"),
                None => "-".to_string(),
            });
            row.push(v);
        }
        table.row(&row_cells);
        grid.push(row);
        eprintln!("  {name}: Δ/ε = {ar} done");
    }
    println!("{}", table.render());
    grid
}

/// Mean relative variation down columns (round-count axis) vs across
/// rows (volume axis) over defined cells.
fn axis_sensitivities(grid: &[Vec<Option<f64>>]) -> (f64, f64) {
    let col_var = {
        let mut ratios = Vec::new();
        for j in 0..grid[0].len() {
            let col: Vec<f64> = grid.iter().filter_map(|r| r[j]).collect();
            if col.len() >= 2 {
                let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                ratios.push(hi / lo);
            }
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    let row_var = {
        let mut ratios = Vec::new();
        for row in grid {
            let cells: Vec<f64> = row.iter().flatten().copied().collect();
            if cells.len() >= 2 {
                let lo = cells.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = cells.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                ratios.push(hi / lo);
            }
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    (col_var, row_var)
}

fn main() {
    println!("== Fig. 7: Delphi runtime patterns on AWS and CPS ==\n");
    let quick = quick_mode();

    // Paper axes — AWS: Δ/ε ∈ {20..2000}, δ/ρ0 ∈ {1..90}.
    let (n_aws, n_cps) = if quick { (16, 30) } else { (64, 85) };
    let aws_agreement: &[f64] = &[20.0, 100.0, 400.0, 2000.0];
    let aws_range: &[f64] = &[1.0, 4.0, 20.0, 90.0];
    let aws = heatmap("AWS", n_aws, || Topology::aws_geo(n_aws), aws_agreement, aws_range, 7001);

    // CPS: Δ/ε ∈ {100..100000}, δ/ρ0 ∈ {1..1000}.
    let cps_agreement: &[f64] = &[100.0, 1_000.0, 10_000.0, 100_000.0];
    let cps_range: &[f64] = &[1.0, 10.0, 100.0, 1_000.0];
    let cps = heatmap("CPS", n_cps, || Topology::cps(n_cps, 15), cps_agreement, cps_range, 7002);

    let (aws_rounds_axis, aws_volume_axis) = axis_sensitivities(&aws);
    let (cps_rounds_axis, cps_volume_axis) = axis_sensitivities(&cps);
    println!("shape checks:");
    println!(
        "  AWS: round-count axis variation {aws_rounds_axis:.2}x vs volume axis {aws_volume_axis:.2}x — rounds dominate: {}",
        aws_rounds_axis > aws_volume_axis
    );
    println!(
        "  CPS: round-count axis variation {cps_rounds_axis:.2}x vs volume axis {cps_volume_axis:.2}x — volume dominates: {}",
        cps_volume_axis > cps_rounds_axis
    );
}
