#![forbid(unsafe_code)]
//! Regenerates **Table I**: the asynchronous convex-BA comparison, with
//! the asymptotic claims checked against *measured* traffic.
//!
//! For the three implemented protocols (Delphi, FIN-style ACS, Abraham et
//! al.) we sweep `n` on a uniform LAN, fit the growth exponent of bytes
//! and messages, and print them alongside the paper's complexity rows.
//! The unimplemented rows (HoneyBadgerBFT, Dumbo2, WaterBear) are listed
//! with their published asymptotics for completeness.
//!
//! `cargo run --release -p delphi-bench --bin table1_complexity [--quick]`

use delphi_bench::{
    growth_exponent, quick_mode, run_aad, run_acs, run_delphi, spread_inputs, TextTable,
};
use delphi_core::DelphiConfig;
use delphi_sim::Topology;

fn main() {
    let ns: &[usize] = if quick_mode() { &[10, 20] } else { &[10, 16, 26, 40] };
    let delta = 16.0;
    let epsilon = 2.0;
    println!("== Table I: communication growth of convex-BA protocols ==\n");

    let mut delphi_bytes = Vec::new();
    let mut delphi_msgs = Vec::new();
    let mut acs_bytes = Vec::new();
    let mut acs_msgs = Vec::new();
    let mut aad_bytes = Vec::new();
    let mut aad_msgs = Vec::new();
    let mut sweep = TextTable::new(&[
        "n",
        "Delphi MiB",
        "FIN MiB",
        "AAD MiB",
        "Delphi msgs",
        "FIN msgs",
        "AAD msgs",
    ]);
    for &n in ns {
        let cfg = DelphiConfig::builder(n)
            .space(0.0, 100_000.0)
            .rho0(epsilon)
            .delta_max(512.0)
            .epsilon(epsilon)
            .build()
            .expect("config");
        let inputs = spread_inputs(n, 40_000.0, delta);
        let d = run_delphi(&cfg, Topology::lan(n), &inputs, 8001);
        let c = run_acs(n, Topology::lan(n), &inputs, 8002);
        let a = run_aad(n, Topology::lan(n), &inputs, 8, 8003);
        sweep.row(&[
            n.to_string(),
            format!("{:.2}", d.wire_mib),
            format!("{:.2}", c.wire_mib),
            format!("{:.2}", a.wire_mib),
            d.msgs.to_string(),
            c.msgs.to_string(),
            a.msgs.to_string(),
        ]);
        delphi_bytes.push((n as f64, d.wire_mib));
        delphi_msgs.push((n as f64, d.msgs as f64));
        acs_bytes.push((n as f64, c.wire_mib));
        acs_msgs.push((n as f64, c.msgs as f64));
        aad_bytes.push((n as f64, a.wire_mib));
        aad_msgs.push((n as f64, a.msgs as f64));
        eprintln!("  n={n} done");
    }
    println!("{}", sweep.render());

    let mut table = TextTable::new(&[
        "protocol",
        "paper communication",
        "paper rounds",
        "validity",
        "measured bytes ~ n^k",
        "measured msgs ~ n^k",
    ]);
    table.row(&[
        "HoneyBadgerBFT".into(),
        "O(l n^3)".into(),
        "O(log n)".into(),
        "[m, M]".into(),
        "(not implemented)".into(),
        "-".into(),
    ]);
    table.row(&[
        "Dumbo2".into(),
        "O(l n^2 + k n^3)".into(),
        "O(1)".into(),
        "[m, M]".into(),
        "(not implemented)".into(),
        "-".into(),
    ]);
    table.row(&[
        "WaterBear".into(),
        "O(l n^3 + exp(n))".into(),
        "O(exp(n))".into(),
        "[m, M]".into(),
        "(not implemented)".into(),
        "-".into(),
    ]);
    table.row(&[
        "FIN (ACS)".into(),
        "O(l n^2 + k n^3)".into(),
        "O(1)".into(),
        "[m, M]".into(),
        format!("k = {:.2}", growth_exponent(&acs_bytes)),
        format!("k = {:.2}", growth_exponent(&acs_msgs)),
    ]);
    table.row(&[
        "Abraham et al.".into(),
        "O(l n^3 log(d/e) + n^4)".into(),
        "O(log(d/e))".into(),
        "[m, M] (e-agr)".into(),
        format!("k = {:.2}", growth_exponent(&aad_bytes)),
        format!("k = {:.2}", growth_exponent(&aad_msgs)),
    ]);
    table.row(&[
        "Delphi".into(),
        "~O(l n^2 d/e log terms)".into(),
        "O(log(d/e ...))".into(),
        "[m-d, M+d] (e-agr)".into(),
        format!("k = {:.2}", growth_exponent(&delphi_bytes)),
        format!("k = {:.2}", growth_exponent(&delphi_msgs)),
    ]);
    println!("{}", table.render());

    let kd = growth_exponent(&delphi_msgs);
    let kc = growth_exponent(&acs_msgs);
    let ka = growth_exponent(&aad_msgs);
    println!("shape checks:");
    println!(
        "  Delphi message growth ~ n^2 (k = {kd:.2}, expect ~2): {}",
        (1.6..2.6).contains(&kd)
    );
    println!("  FIN message growth ~ n^3 (k = {kc:.2}, expect ~3): {}", (2.5..3.5).contains(&kc));
    println!(
        "  Abraham et al. message growth ~ n^3 (k = {ka:.2}, expect ~3): {}",
        (2.5..3.5).contains(&ka)
    );
    println!("  separation Delphi << baselines: {}", kd + 0.5 < kc && kd + 0.5 < ka);
}
