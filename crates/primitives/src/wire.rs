//! A small, dependency-free binary codec.
//!
//! Every protocol in the workspace encodes its own messages with this codec,
//! so the simulator and the TCP transport both move plain bytes, and the
//! bandwidth reported by the benchmark harness is exactly the number of
//! bytes a real deployment would put on the wire.
//!
//! The format is deliberately simple:
//!
//! - unsigned integers are LEB128 varints ([`Writer::put_u64`]);
//! - signed integers are zig-zag encoded then varint ([`Writer::put_i64`]);
//! - `f64` is the IEEE-754 bit pattern, little endian;
//! - byte strings are length-prefixed;
//! - there is no self-description: reader and writer must agree on the
//!   schema, and [`Reader`] validates bounds on every read so malformed or
//!   truncated (Byzantine) input yields [`WireError`], never a panic.
//!
//! # Example
//!
//! ```
//! use delphi_primitives::wire::{Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.put_u64(300);
//! w.put_i64(-7);
//! w.put_f64(2.5);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(r.get_u64().unwrap(), 300);
//! assert_eq!(r.get_i64().unwrap(), -7);
//! assert_eq!(r.get_f64().unwrap(), 2.5);
//! assert!(r.is_empty());
//! ```

use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// Maximum length accepted for a length-prefixed byte string (16 MiB).
///
/// This bounds the allocation a Byzantine sender can force with a single
/// declared length, independent of transport-level frame limits.
pub const MAX_BYTES_LEN: usize = 16 * 1024 * 1024;

/// Error produced when decoding malformed or truncated wire data.
///
/// All variants are *expected* conditions when reading attacker-controlled
/// bytes; decoders in this workspace treat them by discarding the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// A varint used more bytes than the maximum for its type.
    VarintOverflow,
    /// A length prefix exceeded [`MAX_BYTES_LEN`] or the remaining input.
    LengthOutOfBounds,
    /// An enum discriminant or flag had no defined meaning.
    InvalidDiscriminant(u64),
    /// A value violated a schema-level invariant (e.g. a [`crate::Dyadic`]
    /// with an exponent above the supported maximum).
    InvalidValue,
    /// Trailing bytes remained after a message that must consume its input.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::LengthOutOfBounds => write!(f, "length prefix out of bounds"),
            WireError::InvalidDiscriminant(d) => write!(f, "invalid discriminant {d}"),
            WireError::InvalidValue => write!(f, "value violates schema invariant"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl Error for WireError {}

/// Append-only buffer for encoding a message.
///
/// See the [module docs](self) for the format and an example.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer { buf: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single raw byte.
    #[inline]
    pub fn put_raw_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends an unsigned varint (LEB128).
    #[inline]
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `u32` as a varint.
    pub fn put_u32(&mut self, v: u32) {
        self.put_u64(u64::from(v));
    }

    /// Appends a `u16` as a varint.
    pub fn put_u16(&mut self, v: u16) {
        self.put_u64(u64::from(v));
    }

    /// Appends a `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a signed integer with zig-zag encoding.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes without a length prefix (caller owns framing).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends any [`Encode`] value.
    pub fn put<T: Encode + ?Sized>(&mut self, v: &T) {
        v.encode(self);
    }

    /// Appends a slice as a length-prefixed sequence of [`Encode`] values.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        self.put_usize(items.len());
        for item in items {
            item.encode(self);
        }
    }

    /// Finishes encoding and returns the bytes.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Finishes encoding and returns the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor for decoding a message.
///
/// See the [module docs](self) for the format and an example.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The not-yet-consumed bytes, borrowed at the input's lifetime.
    ///
    /// Zero-copy decoders use this to capture the raw slice behind a
    /// value region: take `tail()` before and after reading a region and
    /// the difference is the region's exact encoding, sliceable without
    /// copying.
    #[inline]
    pub fn tail(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Validates and skips one unsigned varint without materializing its
    /// value — the cheap half of [`Reader::get_u64`] for decoders that
    /// only need to find a boundary (e.g. delta-coded id runs whose
    /// wrapping sum cannot fail).
    ///
    /// # Errors
    ///
    /// Exactly [`Reader::get_u64`]'s: [`WireError::Truncated`] on short
    /// input, [`WireError::VarintOverflow`] past 10 bytes or 64 bits.
    #[inline]
    pub fn skip_u64(&mut self) -> Result<(), WireError> {
        let mut pos = self.pos;
        let Some(&first) = self.buf.get(pos) else { return Err(WireError::Truncated) };
        pos += 1;
        if first < 0x80 {
            self.pos = pos;
            return Ok(());
        }
        let mut shift = 7u32;
        loop {
            let Some(&byte) = self.buf.get(pos) else { return Err(WireError::Truncated) };
            pos += 1;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            if byte & 0x80 == 0 {
                self.pos = pos;
                return Ok(());
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the input is exhausted.
    #[inline]
    pub fn get_raw_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned varint.
    ///
    /// The decode hot path (`DelphiBundle` bundles are walls of varints):
    /// the cursor is advanced once per value instead of once per byte, and
    /// single-byte varints — counts, checkpoint deltas, small numerators —
    /// take an early exit after one bounds check.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on short input, [`WireError::VarintOverflow`]
    /// if the encoding exceeds 10 bytes or overflows 64 bits.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        // The cursor stays in a local until the value is complete: the
        // write-back to `self.pos` happens once per varint instead of once
        // per byte, and single-byte varints (counts, small numerators,
        // checkpoint deltas) take the early exit after one bounds check.
        let mut pos = self.pos;
        let Some(&first) = self.buf.get(pos) else { return Err(WireError::Truncated) };
        pos += 1;
        if first < 0x80 {
            self.pos = pos;
            return Ok(u64::from(first));
        }
        let mut value = u64::from(first & 0x7f);
        let mut shift = 7u32;
        loop {
            let Some(&byte) = self.buf.get(pos) else { return Err(WireError::Truncated) };
            pos += 1;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                self.pos = pos;
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a `u32` varint, rejecting values out of range.
    ///
    /// # Errors
    ///
    /// See [`Reader::get_u64`]; additionally [`WireError::VarintOverflow`] if
    /// the value does not fit in `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.get_u64()?).map_err(|_| WireError::VarintOverflow)
    }

    /// Reads a `u16` varint, rejecting values out of range.
    ///
    /// # Errors
    ///
    /// See [`Reader::get_u32`].
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        u16::try_from(self.get_u64()?).map_err(|_| WireError::VarintOverflow)
    }

    /// Reads a `usize` varint, rejecting values out of range.
    ///
    /// # Errors
    ///
    /// See [`Reader::get_u64`].
    #[inline]
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError::VarintOverflow)
    }

    /// Reads a zig-zag-encoded signed integer.
    ///
    /// # Errors
    ///
    /// See [`Reader::get_u64`].
    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let raw = self.get_u64()?;
        Ok((raw >> 1) as i64 ^ -((raw & 1) as i64))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        let raw = self.get_exact(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Reads a boolean, rejecting bytes other than 0 or 1.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::InvalidDiscriminant`].
    #[inline]
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_raw_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(WireError::InvalidDiscriminant(u64::from(d))),
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOutOfBounds`] if the declared length exceeds
    /// [`MAX_BYTES_LEN`] or the remaining input; [`WireError::Truncated`] on
    /// short input.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_usize()?;
        if len > MAX_BYTES_LEN || len > self.remaining() {
            return Err(WireError::LengthOutOfBounds);
        }
        self.get_exact(len)
    }

    /// Reads exactly `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `len` bytes remain.
    #[inline]
    pub fn get_exact(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads any [`Decode`] value.
    ///
    /// # Errors
    ///
    /// Whatever `T::decode` returns.
    pub fn get<T: Decode>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }

    /// Reads a length-prefixed sequence of [`Decode`] values.
    ///
    /// `max_len` bounds the element count so a Byzantine length prefix
    /// cannot force a huge allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOutOfBounds`] if the declared count exceeds
    /// `max_len`, plus whatever `T::decode` returns.
    pub fn get_seq<T: Decode>(&mut self, max_len: usize) -> Result<Vec<T>, WireError> {
        let len = self.get_usize()?;
        if len > max_len {
            return Err(WireError::LengthOutOfBounds);
        }
        let mut items = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            items.push(T::decode(self)?);
        }
        Ok(items)
    }

    /// Asserts that the input has been fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// A value that can be appended to a [`Writer`].
pub trait Encode {
    /// Appends `self` to the writer.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes `self` into a fresh byte buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// A value that can be parsed from a [`Reader`].
pub trait Decode: Sized {
    /// Parses a value, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the input is malformed or truncated.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Convenience: decodes a value from `bytes`, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the input is malformed, truncated, or has
    /// trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_i64()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u16()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_bool()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_f64()
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Maximum dimensions a [`VectorValue`] can address (its membership mask
/// is a single `u64`).
pub const MAX_VECTOR_DIMS: u16 = 64;

/// A sparse per-dimension value assignment for vector-valued (basket)
/// agreement.
///
/// Scalar Delphi bundles carry one [`crate::Dyadic`] per echo; the
/// vector-valued variant agrees on a whole basket at once, so each echo
/// carries up to [`MAX_VECTOR_DIMS`] per-dimension values. The encoding is
/// a membership mask (varint `u64`, bit `d` set iff dimension `d` has a
/// value) followed by the values of the set bits in ascending dimension
/// order — absent dimensions cost nothing, and the common single-dimension
/// echo costs one mask byte over the scalar encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorValue {
    /// Bit `d` set iff dimension `d` carries a value.
    mask: u64,
    /// Values of the set dimensions, ascending by dimension.
    values: Vec<crate::Dyadic>,
}

impl VectorValue {
    /// An empty assignment (no dimension has a value).
    pub fn new() -> VectorValue {
        VectorValue::default()
    }

    /// An assignment holding `value` for `dim` alone.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= MAX_VECTOR_DIMS`.
    pub fn single(dim: u16, value: crate::Dyadic) -> VectorValue {
        let mut v = VectorValue::new();
        v.set(dim, value);
        v
    }

    /// Index of `dim`'s value in `values`: the number of set bits below it.
    fn slot(&self, dim: u16) -> usize {
        (self.mask & ((1u64 << dim) - 1)).count_ones() as usize
    }

    /// Sets (or replaces) the value for `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= MAX_VECTOR_DIMS`.
    pub fn set(&mut self, dim: u16, value: crate::Dyadic) {
        assert!(dim < MAX_VECTOR_DIMS, "dimension {dim} out of range");
        let slot = self.slot(dim);
        if self.mask & (1u64 << dim) == 0 {
            self.mask |= 1u64 << dim;
            self.values.insert(slot, value);
        } else {
            self.values[slot] = value;
        }
    }

    /// The value for `dim`, if any.
    pub fn get(&self, dim: u16) -> Option<crate::Dyadic> {
        if dim >= MAX_VECTOR_DIMS || self.mask & (1u64 << dim) == 0 {
            return None;
        }
        Some(self.values[self.slot(dim)])
    }

    /// Whether `dim` carries a value.
    pub fn contains(&self, dim: u16) -> bool {
        dim < MAX_VECTOR_DIMS && self.mask & (1u64 << dim) != 0
    }

    /// The membership mask (bit `d` set iff dimension `d` has a value).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of dimensions carrying a value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no dimension carries a value.
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Iterates the `(dimension, value)` pairs, ascending by dimension.
    pub fn dims(&self) -> impl Iterator<Item = (u16, crate::Dyadic)> + '_ {
        MaskBits(self.mask).zip(self.values.iter().copied())
    }

    /// Removes every dimension (keeps the value capacity).
    pub fn clear(&mut self) {
        self.mask = 0;
        self.values.clear();
    }
}

/// Iterator over the set bit positions of a `u64`, ascending.
struct MaskBits(u64);

impl Iterator for MaskBits {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        if self.0 == 0 {
            return None;
        }
        let dim = self.0.trailing_zeros() as u16;
        self.0 &= self.0 - 1;
        Some(dim)
    }
}

impl Encode for VectorValue {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.mask);
        for v in &self.values {
            w.put(v);
        }
    }
}

impl Decode for VectorValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mask = r.get_u64()?;
        let count = mask.count_ones() as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(r.get::<crate::Dyadic>()?);
        }
        Ok(VectorValue { mask, values })
    }
}

/// Encodes `value` then decodes it again; used pervasively in tests.
///
/// # Errors
///
/// Returns a [`WireError`] if the roundtrip fails, which always indicates a
/// codec bug.
pub fn roundtrip<T: Encode + Decode>(value: &T) -> Result<T, WireError> {
    T::from_bytes(&value.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        let cases = [0u64, 1, 127, 128, 255, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for v in cases {
            let mut w = Writer::new();
            w.put_u64(v);
            let bytes = w.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_u64().unwrap(), v, "roundtrip of {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_encoding_is_minimal_width() {
        let mut w = Writer::new();
        w.put_u64(127);
        assert_eq!(w.len(), 1);
        let mut w = Writer::new();
        w.put_u64(128);
        assert_eq!(w.len(), 2);
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes: too long for any u64.
        let bytes = [0xff; 11];
        assert_eq!(Reader::new(&bytes).get_u64(), Err(WireError::VarintOverflow));
        // 10 bytes but the last contributes more than the single spare bit.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(Reader::new(&bytes).get_u64(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn skip_u64_matches_get_u64_exactly() {
        // Valid varints of every width, then the overflow and truncation
        // edges: skip must consume and err exactly like get.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![0x00],
            vec![0x7f],
            vec![0x80, 0x01],
            vec![0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01], // u64::MAX
            vec![0xff; 11],                                                   // too long
            vec![0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02], // top bits
            vec![0x80],                                                       // truncated
            vec![],
        ];
        cases.push((0..10).map(|_| 0x80).chain([0x01]).collect()); // max width, high bit clear
        for bytes in cases {
            let mut get = Reader::new(&bytes);
            let mut skip = Reader::new(&bytes);
            let got = get.get_u64().map(|_| ());
            assert_eq!(skip.skip_u64(), got, "{bytes:?}");
            assert_eq!(skip.remaining(), get.remaining(), "{bytes:?}");
        }
    }

    #[test]
    fn tail_exposes_unconsumed_bytes() {
        let bytes = [1u8, 2, 3, 4];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.tail(), &bytes);
        let _ = r.get_raw_u8().unwrap();
        assert_eq!(r.tail(), &bytes[1..]);
        let before = r.tail();
        let _ = r.get_raw_u8().unwrap();
        // The region read is the difference of the two tails.
        let region = &before[..before.len() - r.tail().len()];
        assert_eq!(region, &[2]);
    }

    #[test]
    fn truncated_varint_rejected() {
        let bytes = [0x80u8];
        assert_eq!(Reader::new(&bytes).get_u64(), Err(WireError::Truncated));
        assert_eq!(Reader::new(&[]).get_u64(), Err(WireError::Truncated));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1234567, -7654321] {
            let mut w = Writer::new();
            w.put_i64(v);
            let bytes = w.into_vec();
            assert_eq!(Reader::new(&bytes).get_i64().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_encode_small() {
        for v in [-64i64, 63] {
            let mut w = Writer::new();
            w.put_i64(v);
            assert_eq!(w.len(), 1, "zig-zag of {v} should be 1 byte");
        }
    }

    #[test]
    fn f64_roundtrip_preserves_bits() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            let mut w = Writer::new();
            w.put_f64(v);
            let bytes = w.into_vec();
            let back = Reader::new(&bytes).get_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let mut w = Writer::new();
        w.put_f64(f64::NAN);
        let bytes = w.into_vec();
        assert!(Reader::new(&bytes).get_f64().unwrap().is_nan());
    }

    #[test]
    fn bool_rejects_other_bytes() {
        assert_eq!(Reader::new(&[0]).get_bool(), Ok(false));
        assert_eq!(Reader::new(&[1]).get_bool(), Ok(true));
        assert_eq!(Reader::new(&[2]).get_bool(), Err(WireError::InvalidDiscriminant(2)));
    }

    #[test]
    fn bytes_length_bounds_enforced() {
        let mut w = Writer::new();
        w.put_bytes(b"hello");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert!(r.finish().is_ok());

        // Length prefix claims more than remains.
        let mut w = Writer::new();
        w.put_usize(10);
        w.put_raw(b"short");
        let buf = w.into_vec();
        assert_eq!(Reader::new(&buf).get_bytes(), Err(WireError::LengthOutOfBounds));

        // Length prefix larger than MAX_BYTES_LEN.
        let mut w = Writer::new();
        w.put_usize(MAX_BYTES_LEN + 1);
        let buf = w.into_vec();
        assert_eq!(Reader::new(&buf).get_bytes(), Err(WireError::LengthOutOfBounds));
    }

    #[test]
    fn seq_respects_max_len() {
        let mut w = Writer::new();
        w.put_seq(&[crate::NodeId(1), crate::NodeId(2), crate::NodeId(3)]);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let back: Vec<crate::NodeId> = r.get_seq(3).unwrap();
        assert_eq!(back.len(), 3);

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_seq::<crate::NodeId>(2), Err(WireError::LengthOutOfBounds));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut r = Reader::new(&[1, 2]);
        let _ = r.get_raw_u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes));
    }

    #[test]
    fn vector_value_set_get_and_order() {
        use crate::Dyadic;
        let mut v = VectorValue::new();
        assert!(v.is_empty());
        assert_eq!(v.get(0), None);
        v.set(5, Dyadic::ONE);
        v.set(0, Dyadic::ZERO);
        v.set(63, Dyadic::new(3, 2));
        assert_eq!(v.len(), 3);
        assert_eq!(v.mask(), (1 << 5) | 1 | (1 << 63));
        assert_eq!(v.get(5), Some(Dyadic::ONE));
        assert_eq!(v.get(0), Some(Dyadic::ZERO));
        assert_eq!(v.get(63), Some(Dyadic::new(3, 2)));
        assert_eq!(v.get(7), None);
        assert!(v.contains(63) && !v.contains(64));
        // dims() ascends regardless of insertion order.
        let pairs: Vec<_> = v.dims().collect();
        assert_eq!(pairs, vec![(0, Dyadic::ZERO), (5, Dyadic::ONE), (63, Dyadic::new(3, 2))]);
        // Replacement keeps the slot.
        v.set(5, Dyadic::new(1, 2));
        assert_eq!(v.get(5), Some(Dyadic::new(1, 2)));
        assert_eq!(v.len(), 3);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.dims().count(), 0);
    }

    #[test]
    fn vector_value_roundtrip() {
        use crate::Dyadic;
        let mut v = VectorValue::single(3, Dyadic::ONE);
        v.set(17, Dyadic::new(5, 4));
        assert_eq!(roundtrip(&v).unwrap(), v);
        assert_eq!(roundtrip(&VectorValue::new()).unwrap(), VectorValue::new());
    }

    #[test]
    fn vector_value_single_dim_costs_one_mask_byte() {
        use crate::Dyadic;
        let scalar = Dyadic::new(123, 7).to_bytes().len();
        let vector = VectorValue::single(3, Dyadic::new(123, 7)).to_bytes().len();
        assert_eq!(vector, scalar + 1);
    }

    #[test]
    fn vector_value_truncated_and_invalid_rejected() {
        use crate::Dyadic;
        let bytes = VectorValue::single(2, Dyadic::ONE).to_bytes();
        for cut in 0..bytes.len() {
            assert!(VectorValue::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A mask promising a value with no bytes behind it.
        let mut w = Writer::new();
        w.put_u64(1);
        assert_eq!(VectorValue::from_bytes(&w.into_vec()), Err(WireError::Truncated));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_value_dim_bound_enforced() {
        let _ = VectorValue::single(64, crate::Dyadic::ONE);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            WireError::Truncated,
            WireError::VarintOverflow,
            WireError::LengthOutOfBounds,
            WireError::InvalidDiscriminant(9),
            WireError::InvalidValue,
            WireError::TrailingBytes,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
