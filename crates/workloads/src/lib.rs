//! Synthetic oracle workloads matching the paper's two applications
//! (§VI-A, §VI-B).
//!
//! The paper configures Delphi from *measured* data: two weeks of BTC
//! price feeds from ten exchanges, and 80 000 object detections from a
//! drone-mounted EfficientDet. Neither dataset is redistributable, but
//! the paper reduces each to a fitted distribution — a Fréchet law for
//! the per-minute price range, a Gamma law for detection IoU plus a
//! Gamma-approximated GPS error. These generators sample from exactly
//! those laws, so every analysis downstream of the raw data (Figs. 4–5,
//! the Δ/ρ0/ε derivations, the §VI-E validity numbers) can be reproduced.
//! DESIGN.md §5 records the substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assets;
pub mod btc;
pub mod drone;
pub mod epochs;

pub use assets::{AssetConfig, AssetMinute, MultiAssetConfig, MultiAssetFeed};
pub use btc::{deployment_inputs, BtcFeed, BtcFeedConfig, MinuteQuote};
pub use drone::{DroneScenario, DroneScenarioConfig, Observation};
pub use epochs::EpochFeed;
