//! Offline stand-in for the `tokio` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset its TCP runner uses: [`spawn`] / [`task::JoinHandle`],
//! [`sync::mpsc`] channels, [`time`] sleeps, [`net`] TCP types, the
//! [`io::AsyncReadExt`]/[`io::AsyncWriteExt`] method pair, the [`select!`]
//! macro, and the `#[tokio::main]`/`#[tokio::test]` attributes.
//!
//! # Execution model
//!
//! This is a **thread-per-task** runtime: [`spawn`] starts an OS thread that
//! drives its future with a park/unpark block-on loop. Channel and timer
//! futures are genuinely pollable (they register wakers), which is what
//! [`select!`] needs; socket operations instead perform the blocking syscall
//! eagerly and return an already-ready future. That trade-off is sound here
//! because the workspace's runner never puts socket I/O inside `select!` —
//! sockets are owned by dedicated reader/writer tasks, each of which has its
//! own thread to block.
//!
//! [`task::JoinHandle::abort`] is cooperative: it stops the task at its next
//! yield point. A task blocked in `accept()`/`connect()` ends with the
//! process instead — acceptable for the short-lived test clusters and
//! examples this workspace runs.

pub use tokio_macros::{main, test};

pub use task::{spawn, JoinHandle};

/// Task spawning and join handles.
pub mod task {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    /// Error returned by awaiting a [`JoinHandle`] whose task was aborted or
    /// panicked.
    #[derive(Debug)]
    pub struct JoinError {
        cancelled: bool,
    }

    impl JoinError {
        /// Whether the task was cancelled via [`JoinHandle::abort`].
        #[must_use]
        pub fn is_cancelled(&self) -> bool {
            self.cancelled
        }

        /// Whether the task panicked.
        #[must_use]
        pub fn is_panic(&self) -> bool {
            !self.cancelled
        }
    }

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            if self.cancelled {
                write!(f, "task was cancelled")
            } else {
                write!(f, "task panicked")
            }
        }
    }

    impl std::error::Error for JoinError {}

    struct TaskState<T> {
        result: Mutex<Option<Result<T, JoinError>>>,
        join_waker: Mutex<Option<Waker>>,
        aborted: AtomicBool,
        task_thread: Mutex<Option<std::thread::Thread>>,
    }

    /// An owned permission to await or abort a spawned task.
    pub struct JoinHandle<T> {
        state: Arc<TaskState<T>>,
    }

    impl<T> JoinHandle<T> {
        /// Requests cooperative cancellation: the task stops at its next
        /// yield point and awaiting the handle yields a cancelled
        /// [`JoinError`].
        pub fn abort(&self) {
            self.state.aborted.store(true, Ordering::SeqCst);
            if let Some(t) = self.state.task_thread.lock().unwrap().as_ref() {
                t.unpark();
            }
        }

        /// Whether the task has finished (completed, panicked, or aborted).
        #[must_use]
        pub fn is_finished(&self) -> bool {
            self.state.result.lock().unwrap().is_some()
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut slot = self.state.result.lock().unwrap();
            if let Some(r) = slot.take() {
                return Poll::Ready(r);
            }
            drop(slot);
            *self.state.join_waker.lock().unwrap() = Some(cx.waker().clone());
            // Re-check: the task may have finished between the lock drops.
            if let Some(r) = self.state.result.lock().unwrap().take() {
                return Poll::Ready(r);
            }
            Poll::Pending
        }
    }

    /// Spawns `future` onto its own thread and returns a handle to await it.
    pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state: Arc<TaskState<F::Output>> = Arc::new(TaskState {
            result: Mutex::new(None),
            join_waker: Mutex::new(None),
            aborted: AtomicBool::new(false),
            task_thread: Mutex::new(None),
        });
        let task_state = state.clone();
        std::thread::Builder::new()
            .name("tokio-stub-task".into())
            .spawn(move || {
                *task_state.task_thread.lock().unwrap() = Some(std::thread::current());
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::runtime::block_on_until(future, || {
                        task_state.aborted.load(Ordering::SeqCst)
                    })
                }));
                let outcome = match result {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Err(JoinError { cancelled: true }),
                    Err(_) => Err(JoinError { cancelled: false }),
                };
                *task_state.result.lock().unwrap() = Some(outcome);
                if let Some(w) = task_state.join_waker.lock().unwrap().take() {
                    w.wake();
                }
            })
            .expect("spawn task thread");
        JoinHandle { state }
    }
}

/// The block-on executor behind `#[tokio::main]`/`#[tokio::test]`.
pub mod runtime {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};

    struct ThreadWaker(std::thread::Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Drives `future` on the current thread, parking between polls.
    /// Returns `None` if `cancelled()` reports true at a yield point.
    pub(crate) fn block_on_until<F: Future>(
        future: F,
        cancelled: impl Fn() -> bool,
    ) -> Option<F::Output> {
        let mut future = pin!(future);
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            if cancelled() {
                return None;
            }
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return Some(v),
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// Minimal stand-in for `tokio::runtime::Runtime`.
    #[derive(Debug, Default)]
    pub struct Runtime;

    impl Runtime {
        /// Creates the runtime (infallible here; `Result` for API parity).
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime)
        }

        /// Runs `future` to completion on the current thread.
        pub fn block_on<F: Future>(&self, future: F) -> F::Output {
            block_on_until(future, || false).expect("block_on future cannot be cancelled")
        }
    }
}

/// Asynchronous-looking TCP built on eager blocking syscalls.
pub mod net {
    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs};

    /// TCP listener (wraps `std::net::TcpListener`).
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to the first resolvable address.
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            Ok(TcpListener { inner: std::net::TcpListener::bind(addr)? })
        }

        /// Accepts one inbound connection (blocks this task's thread).
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.inner.accept()?;
            Ok((TcpStream { inner: stream }, addr))
        }

        /// The local address this listener is bound to.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    /// TCP stream (wraps `std::net::TcpStream`).
    #[derive(Debug)]
    pub struct TcpStream {
        pub(crate) inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to the first resolvable address (blocks this task's
        /// thread; loopback refusals return immediately).
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            Ok(TcpStream { inner: std::net::TcpStream::connect(addr)? })
        }

        /// Sets `TCP_NODELAY`.
        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// The local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }
}

/// `AsyncReadExt`/`AsyncWriteExt` with eager blocking semantics.
pub mod io {
    use std::future::{ready, Ready};
    use std::io::{Read, Write};

    /// Read methods. The returned futures are already complete: the blocking
    /// read happens at call time, on the calling task's dedicated thread.
    pub trait AsyncReadExt {
        /// Reads exactly `buf.len()` bytes.
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>>;

        /// Reads up to `buf.len()` bytes, returning how many arrived
        /// (0 at EOF) — the partial read an HTTP-style parser needs.
        fn read(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>>;
    }

    /// Write methods. Same eager semantics as [`AsyncReadExt`].
    pub trait AsyncWriteExt {
        /// Writes the entire buffer.
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>>;
    }

    impl AsyncReadExt for crate::net::TcpStream {
        fn read_exact(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>> {
            ready(self.inner.read_exact(buf).map(|()| buf.len()))
        }

        fn read(&mut self, buf: &mut [u8]) -> Ready<std::io::Result<usize>> {
            ready(self.inner.read(buf))
        }
    }

    impl AsyncWriteExt for crate::net::TcpStream {
        fn write_all(&mut self, buf: &[u8]) -> Ready<std::io::Result<()>> {
            ready(self.inner.write_all(buf))
        }
    }
}

/// Timers: genuinely pollable, so they compose with [`select!`].
///
/// All sleeps share one timer thread holding a deadline min-heap. The
/// obvious thread-per-sleep stub falls over in practice: event loops
/// re-create a far-deadline sleep every `select!` iteration, and a
/// thread that parks until that deadline outlives the loop iteration by
/// minutes — a busy multi-node process accumulates tens of thousands of
/// parked threads and dies on `EAGAIN`. A heap entry costs bytes instead.
pub mod time {
    use std::cmp::Ordering as CmpOrdering;
    use std::collections::BinaryHeap;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex, OnceLock};
    use std::task::{Context, Poll, Waker};
    use std::time::Duration;

    pub use std::time::Instant;

    /// One registered sleep: wake whoever is in `slot` at `deadline`.
    struct TimerEntry {
        deadline: Instant,
        slot: Arc<Mutex<Option<Waker>>>,
    }

    // `BinaryHeap` is a max-heap; invert the ordering so `peek` is the
    // earliest deadline.
    impl PartialEq for TimerEntry {
        fn eq(&self, other: &TimerEntry) -> bool {
            self.deadline == other.deadline
        }
    }
    impl Eq for TimerEntry {}
    impl PartialOrd for TimerEntry {
        fn partial_cmp(&self, other: &TimerEntry) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for TimerEntry {
        fn cmp(&self, other: &TimerEntry) -> CmpOrdering {
            other.deadline.cmp(&self.deadline)
        }
    }

    struct TimerShared {
        heap: Mutex<BinaryHeap<TimerEntry>>,
        tick: Condvar,
    }

    fn timer() -> &'static TimerShared {
        static TIMER: OnceLock<&'static TimerShared> = OnceLock::new();
        TIMER.get_or_init(|| {
            let shared: &'static TimerShared = Box::leak(Box::new(TimerShared {
                heap: Mutex::new(BinaryHeap::new()),
                tick: Condvar::new(),
            }));
            std::thread::Builder::new()
                .name("tokio-stub-timer".into())
                .spawn(move || loop {
                    let mut heap = shared.heap.lock().unwrap();
                    let now = Instant::now();
                    while heap.peek().is_some_and(|e| e.deadline <= now) {
                        let entry = heap.pop().unwrap();
                        let woken = entry.slot.lock().unwrap().take();
                        if let Some(w) = woken {
                            w.wake();
                        }
                    }
                    let _unused = match heap.peek() {
                        Some(next) => {
                            let wait = next.deadline.saturating_duration_since(now);
                            shared.tick.wait_timeout(heap, wait).unwrap().0
                        }
                        None => shared.tick.wait(heap).unwrap(),
                    };
                })
                .expect("spawn timer thread");
            shared
        })
    }

    fn register(deadline: Instant, slot: Arc<Mutex<Option<Waker>>>) {
        let shared = timer();
        let mut heap = shared.heap.lock().unwrap();
        let earliest_changed = heap.peek().is_none_or(|e| deadline < e.deadline);
        heap.push(TimerEntry { deadline, slot });
        drop(heap);
        if earliest_changed {
            shared.tick.notify_one();
        }
    }

    /// Future returned by [`sleep`]/[`sleep_until`].
    pub struct Sleep {
        deadline: Instant,
        waker_slot: Arc<Mutex<Option<Waker>>>,
        timer_started: bool,
    }

    /// Sleeps for `duration`.
    pub fn sleep(duration: Duration) -> Sleep {
        sleep_until(Instant::now() + duration)
    }

    /// Sleeps until `deadline`.
    pub fn sleep_until(deadline: Instant) -> Sleep {
        Sleep { deadline, waker_slot: Arc::new(Mutex::new(None)), timer_started: false }
    }

    impl Future for Sleep {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let now = Instant::now();
            if now >= self.deadline {
                return Poll::Ready(());
            }
            *self.waker_slot.lock().unwrap() = Some(cx.waker().clone());
            if !self.timer_started {
                self.timer_started = true;
                register(self.deadline, self.waker_slot.clone());
            }
            Poll::Pending
        }
    }
}

/// Synchronization primitives.
pub mod sync {
    /// Multi-producer, single-consumer channels with pollable `recv`/`send`.
    pub mod mpsc {
        use std::collections::VecDeque;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        /// Error returned when sending into a channel whose receiver is gone.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

        /// Error returned by [`Sender::try_send`].
        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The channel is at capacity; the value is handed back.
            Full(T),
            /// The receiver is gone; the value is handed back.
            Closed(T),
        }

        impl<T> std::fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "no available capacity"),
                    TrySendError::Closed(_) => write!(f, "channel closed"),
                }
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

        /// Channel error types, at tokio's canonical path.
        pub mod error {
            pub use super::{SendError, TrySendError};
        }

        struct Shared<T> {
            queue: VecDeque<T>,
            capacity: Option<usize>,
            rx_alive: bool,
            tx_count: usize,
            rx_waker: Option<Waker>,
            tx_wakers: Vec<Waker>,
        }

        impl<T> Shared<T> {
            fn wake_rx(&mut self) {
                if let Some(w) = self.rx_waker.take() {
                    w.wake();
                }
            }

            fn wake_one_tx(&mut self) {
                if let Some(w) = self.tx_wakers.pop() {
                    w.wake();
                }
            }
        }

        type Chan<T> = Arc<Mutex<Shared<T>>>;

        fn new_chan<T>(capacity: Option<usize>) -> Chan<T> {
            Arc::new(Mutex::new(Shared {
                queue: VecDeque::new(),
                capacity,
                rx_alive: true,
                tx_count: 1,
                rx_waker: None,
                tx_wakers: Vec::new(),
            }))
        }

        /// Creates a bounded channel.
        ///
        /// # Panics
        /// Panics if `capacity` is zero.
        #[must_use]
        pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
            assert!(capacity > 0, "mpsc capacity must be positive");
            let chan = new_chan(Some(capacity));
            (Sender { chan: chan.clone() }, Receiver { chan })
        }

        /// Creates an unbounded channel.
        #[must_use]
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let chan = new_chan(None);
            (UnboundedSender { chan: chan.clone() }, UnboundedReceiver { chan })
        }

        /// Bounded sender.
        pub struct Sender<T> {
            chan: Chan<T>,
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                self.chan.lock().unwrap().tx_count += 1;
                Sender { chan: self.chan.clone() }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut s = self.chan.lock().unwrap();
                s.tx_count -= 1;
                if s.tx_count == 0 {
                    s.wake_rx();
                }
            }
        }

        impl<T: Send> Sender<T> {
            /// Sends `value`, waiting for room in a full channel.
            pub fn send(&self, value: T) -> SendFuture<'_, T> {
                SendFuture { chan: &self.chan, value: Some(value) }
            }

            /// Sends `value` without waiting; fails fast when the channel
            /// is full or the receiver is gone.
            ///
            /// # Errors
            /// [`TrySendError::Full`] at capacity, [`TrySendError::Closed`]
            /// when the receiver was dropped; both return the value.
            pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
                let mut s = self.chan.lock().unwrap();
                if !s.rx_alive {
                    return Err(TrySendError::Closed(value));
                }
                if s.capacity.is_some_and(|cap| s.queue.len() >= cap) {
                    return Err(TrySendError::Full(value));
                }
                s.queue.push_back(value);
                s.wake_rx();
                Ok(())
            }
        }

        /// Future returned by [`Sender::send`].
        pub struct SendFuture<'a, T> {
            chan: &'a Chan<T>,
            value: Option<T>,
        }

        // The future never pins its fields (no self-references), so it is
        // unconditionally Unpin; `poll` relies on this via `get_mut`.
        impl<T> Unpin for SendFuture<'_, T> {}

        impl<T: Send> Future for SendFuture<'_, T> {
            type Output = Result<(), SendError<T>>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let this = self.get_mut();
                let mut s = this.chan.lock().unwrap();
                if !s.rx_alive {
                    drop(s);
                    let v = this.value.take().expect("polled after completion");
                    return Poll::Ready(Err(SendError(v)));
                }
                let has_room = s.capacity.is_none_or(|cap| s.queue.len() < cap);
                if has_room {
                    let v = this.value.take().expect("polled after completion");
                    s.queue.push_back(v);
                    s.wake_rx();
                    Poll::Ready(Ok(()))
                } else {
                    s.tx_wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }

        /// Bounded receiver.
        pub struct Receiver<T> {
            chan: Chan<T>,
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let mut s = self.chan.lock().unwrap();
                s.rx_alive = false;
                for w in s.tx_wakers.drain(..) {
                    w.wake();
                }
            }
        }

        impl<T> Receiver<T> {
            /// Receives the next value; `None` once every sender is dropped
            /// and the queue is drained.
            pub fn recv(&mut self) -> RecvFuture<'_, T> {
                RecvFuture { chan: &self.chan }
            }
        }

        /// Future returned by `recv` on either receiver flavor.
        pub struct RecvFuture<'a, T> {
            chan: &'a Chan<T>,
        }

        impl<T> Future for RecvFuture<'_, T> {
            type Output = Option<T>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut s = self.chan.lock().unwrap();
                if let Some(v) = s.queue.pop_front() {
                    s.wake_one_tx();
                    return Poll::Ready(Some(v));
                }
                if s.tx_count == 0 {
                    return Poll::Ready(None);
                }
                s.rx_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        /// Unbounded sender.
        pub struct UnboundedSender<T> {
            chan: Chan<T>,
        }

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                self.chan.lock().unwrap().tx_count += 1;
                UnboundedSender { chan: self.chan.clone() }
            }
        }

        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                let mut s = self.chan.lock().unwrap();
                s.tx_count -= 1;
                if s.tx_count == 0 {
                    s.wake_rx();
                }
            }
        }

        impl<T> UnboundedSender<T> {
            /// Sends without waiting (the channel has no capacity bound).
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                let mut s = self.chan.lock().unwrap();
                if !s.rx_alive {
                    return Err(SendError(value));
                }
                s.queue.push_back(value);
                s.wake_rx();
                Ok(())
            }
        }

        /// Unbounded receiver.
        pub struct UnboundedReceiver<T> {
            chan: Chan<T>,
        }

        impl<T> Drop for UnboundedReceiver<T> {
            fn drop(&mut self) {
                let mut s = self.chan.lock().unwrap();
                s.rx_alive = false;
                for w in s.tx_wakers.drain(..) {
                    w.wake();
                }
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Receives the next value; `None` once every sender is dropped
            /// and the queue is drained.
            pub fn recv(&mut self) -> RecvFuture<'_, T> {
                RecvFuture { chan: &self.chan }
            }
        }
    }
}

/// Internal support for the [`select!`] macro.
#[doc(hidden)]
pub mod macros {
    /// Which branch of a two-way select completed first.
    pub enum Either<A, B> {
        /// First branch.
        A(A),
        /// Second branch.
        B(B),
    }
}

/// Waits on two futures, running the body of whichever completes first.
///
/// Supports the two-branch form used in this workspace:
///
/// ```
/// tokio::runtime::Runtime::new().unwrap().block_on(async {
///     let (tx, mut rx) = tokio::sync::mpsc::unbounded_channel();
///     tx.send(7u8).unwrap();
///     let deadline = tokio::time::Instant::now() + std::time::Duration::from_secs(1);
///     let got = tokio::select! {
///         m = rx.recv() => m,
///         _ = tokio::time::sleep_until(deadline) => None,
///     };
///     assert_eq!(got, Some(7));
/// });
/// ```
///
/// Branches are polled in order (biased), which is indistinguishable from
/// tokio's randomized polling for the runner's recv-vs-timeout usage.
#[macro_export]
macro_rules! select {
    (
        $p1:pat = $f1:expr => $b1:expr,
        $p2:pat = $f2:expr => $b2:expr $(,)?
    ) => {{
        let mut __f1 = ::std::pin::pin!($f1);
        let mut __f2 = ::std::pin::pin!($f2);
        let __choice = ::std::future::poll_fn(|cx| {
            if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__f1.as_mut(), cx) {
                return ::std::task::Poll::Ready($crate::macros::Either::A(v));
            }
            if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__f2.as_mut(), cx) {
                return ::std::task::Poll::Ready($crate::macros::Either::B(v));
            }
            ::std::task::Poll::Pending
        })
        .await;
        match __choice {
            $crate::macros::Either::A($p1) => $b1,
            $crate::macros::Either::B($p2) => $b2,
        }
    }};
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    #[test]
    fn block_on_and_spawn_round_trip() {
        let rt = crate::runtime::Runtime::new().unwrap();
        let out = rt.block_on(async {
            let h = crate::spawn(async { 21 * 2 });
            h.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn mpsc_bounded_delivers_in_order() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(4);
            let sender = crate::spawn(async move {
                for i in 0..100 {
                    tx.send(i).await.unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv().await, Some(i));
            }
            assert_eq!(rx.recv().await, None);
            sender.await.unwrap();
        });
    }

    #[test]
    fn mpsc_send_errors_after_rx_drop() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let (tx, rx) = crate::sync::mpsc::unbounded_channel::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        });
    }

    #[test]
    fn select_prefers_ready_channel_over_timer() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel::<u8>();
            tx.send(7).unwrap();
            let deadline = Instant::now() + Duration::from_secs(5);
            let got = crate::select! {
                m = rx.recv() => m,
                _ = crate::time::sleep_until(deadline) => None,
            };
            assert_eq!(got, Some(7));
        });
    }

    #[test]
    fn select_times_out_on_silent_channel() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let (_tx, mut rx) = crate::sync::mpsc::unbounded_channel::<u8>();
            let start = Instant::now();
            let deadline = start + Duration::from_millis(50);
            let got = crate::select! {
                m = rx.recv() => m,
                _ = crate::time::sleep_until(deadline) => None,
            };
            assert_eq!(got, None);
            assert!(start.elapsed() >= Duration::from_millis(50));
        });
    }

    #[test]
    fn abort_cancels_a_looping_task() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let h = crate::spawn(async {
                loop {
                    crate::time::sleep(Duration::from_millis(5)).await;
                }
            });
            crate::time::sleep(Duration::from_millis(20)).await;
            h.abort();
            let err = h.await.unwrap_err();
            assert!(err.is_cancelled());
        });
    }

    #[test]
    fn tcp_echo_between_tasks() {
        use crate::io::{AsyncReadExt, AsyncWriteExt};
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut sock, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 5];
                sock.read_exact(&mut buf).await.unwrap();
                sock.write_all(&buf).await.unwrap();
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            client.set_nodelay(true).unwrap();
            client.write_all(b"delph").await.unwrap();
            let mut echo = [0u8; 5];
            client.read_exact(&mut echo).await.unwrap();
            assert_eq!(&echo, b"delph");
            server.await.unwrap();
        });
    }

    #[test]
    fn tcp_partial_read_returns_available_bytes_and_eof() {
        use crate::io::{AsyncReadExt, AsyncWriteExt};
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut sock, _) = listener.accept().await.unwrap();
                sock.write_all(b"abc").await.unwrap();
                // Dropping the socket closes it: the client sees EOF.
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            let mut buf = [0u8; 16];
            let mut got = Vec::new();
            loop {
                let n = client.read(&mut buf).await.unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, b"abc");
            server.await.unwrap();
        });
    }
}
