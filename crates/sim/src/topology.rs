//! Testbed topologies: latency, bandwidth, and CPU-cost models.
//!
//! Two presets mirror the paper's testbeds (§VI-C):
//!
//! - [`Topology::aws_geo`] — nodes spread round-robin across 8 AWS regions
//!   with a realistic one-way latency matrix and log-normal jitter;
//!   plentiful bandwidth, fast CPUs. Latency (i.e. round count) dominates,
//!   as the paper observes in Fig. 7 (left).
//! - [`Topology::cps`] — processes packed onto a small number of
//!   Raspberry-Pi-class hosts behind one switch: sub-millisecond latency,
//!   but *shared* per-host egress bandwidth and slow CPUs. Per-round
//!   communication volume dominates, as in Fig. 7 (right).

use crate::latency::{Jitter, LatencyMatrix};

/// Framing overhead added to every message on the wire, in bytes.
///
/// Matches `delphi-net`'s frame: 4-byte length, 2-byte sender id, 32-byte
/// HMAC tag, plus a 2-byte protocol tag — so simulated bandwidth equals
/// what the TCP transport would send.
pub const WIRE_OVERHEAD_BYTES: usize = 40;

/// Per-message receiver CPU cost model.
///
/// Approximates message-handling compute (deserialization, MAC
/// verification, protocol logic) as an affine function of message size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed cost per received message, nanoseconds.
    pub per_message_ns: u64,
    /// Marginal cost per received payload byte, nanoseconds.
    pub per_byte_ns: u64,
}

impl CostModel {
    /// A zero-cost model (pure network-latency studies).
    pub const FREE: CostModel = CostModel { per_message_ns: 0, per_byte_ns: 0 };

    /// Processing cost of a `len`-byte message.
    pub fn cost_ns(&self, len: usize) -> u64 {
        self.per_message_ns + self.per_byte_ns * len as u64
    }
}

/// A complete network/compute model for a simulated deployment.
#[derive(Clone, Debug)]
pub struct Topology {
    latency: LatencyMatrix,
    jitter: Jitter,
    /// Per-node egress bandwidth in bits/second (`u64::MAX` = unlimited).
    egress_bps: Vec<u64>,
    cost: CostModel,
    fifo: bool,
}

/// One-way latencies between the 8 AWS regions used in the paper
/// (N. Virginia, Ohio, N. California, Oregon, Canada, Ireland, Singapore,
/// Tokyo), in milliseconds. Approximately half the public RTT figures.
const AWS_REGION_LATENCY_MS: [[u64; 8]; 8] = [
    [1, 6, 30, 35, 8, 38, 110, 75],
    [6, 1, 25, 30, 12, 42, 115, 80],
    [30, 25, 1, 10, 35, 70, 85, 55],
    [35, 30, 10, 1, 30, 65, 82, 50],
    [8, 12, 35, 30, 1, 35, 110, 80],
    [38, 42, 70, 65, 35, 1, 120, 105],
    [110, 115, 85, 82, 110, 120, 1, 35],
    [75, 80, 55, 50, 80, 105, 35, 1],
];

impl Topology {
    /// Uniform LAN: sub-millisecond constant latency, effectively unlimited
    /// bandwidth, free CPU. The default for unit tests.
    pub fn lan(n: usize) -> Topology {
        Topology {
            latency: LatencyMatrix::constant(n, 200_000), // 0.2 ms
            jitter: Jitter::Uniform { spread: 0.5 },
            egress_bps: vec![u64::MAX; n],
            cost: CostModel::FREE,
            fifo: false,
        }
    }

    /// Geo-distributed AWS-style testbed (§VI-C "AWS testbed").
    ///
    /// Nodes are assigned round-robin to the 8 regions of the paper;
    /// latencies follow [`AWS_REGION_LATENCY_MS`] with log-normal jitter;
    /// each t2.micro-class node gets 100 Mbit/s egress and a fast-CPU cost
    /// model.
    pub fn aws_geo(n: usize) -> Topology {
        let region = |i: usize| i % 8;
        let latency = LatencyMatrix::from_fn(n, |from, to| {
            AWS_REGION_LATENCY_MS[region(from)][region(to)] * 1_000_000
        });
        Topology {
            latency,
            jitter: Jitter::LogNormal { sigma: 0.15 },
            egress_bps: vec![100_000_000; n],
            cost: CostModel { per_message_ns: 20_000, per_byte_ns: 8 },
            fifo: false,
        }
    }

    /// Embedded CPS testbed (§VI-C "Embedded Device Testbed").
    ///
    /// `n` processes are packed round-robin onto `hosts` Raspberry-Pi-class
    /// devices behind one switch. Latency is sub-millisecond, but each
    /// device's 100 Mbit/s link is *shared* by its co-located processes
    /// (modelled as an even split of egress bandwidth) and the ARM-class
    /// CPU cost is an order of magnitude above AWS.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn cps(n: usize, hosts: usize) -> Topology {
        assert!(hosts > 0, "need at least one host");
        let host = |i: usize| i % hosts;
        let latency = LatencyMatrix::from_fn(n, |from, to| {
            if host(from) == host(to) {
                100_000 // 0.1 ms loopback/switch-local
            } else {
                500_000 // 0.5 ms through the switch
            }
        });
        let procs_on_host = |h: usize| (n / hosts) + usize::from(h < n % hosts);
        let egress_bps =
            (0..n).map(|i| 100_000_000 / procs_on_host(host(i)).max(1) as u64).collect();
        Topology {
            latency,
            jitter: Jitter::Uniform { spread: 0.3 },
            egress_bps,
            cost: CostModel { per_message_ns: 150_000, per_byte_ns: 60 },
            fifo: false,
        }
    }

    /// Builds a fully custom topology.
    pub fn custom(
        latency: LatencyMatrix,
        jitter: Jitter,
        egress_bps: Vec<u64>,
        cost: CostModel,
    ) -> Topology {
        assert_eq!(latency.n(), egress_bps.len(), "egress vector size mismatch");
        Topology { latency, jitter, egress_bps, cost, fifo: false }
    }

    /// Enables per-pair FIFO delivery (messages between a fixed pair arrive
    /// in send order). Off by default: the paper's adversary may reorder.
    pub fn with_fifo(mut self, fifo: bool) -> Topology {
        self.fifo = fifo;
        self
    }

    /// Overrides the CPU cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Topology {
        self.cost = cost;
        self
    }

    /// Overrides every node's egress bandwidth (bits/second).
    pub fn with_uniform_egress_bps(mut self, bps: u64) -> Topology {
        for b in &mut self.egress_bps {
            *b = bps;
        }
        self
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.latency.n()
    }

    /// The base latency matrix.
    pub fn latency(&self) -> &LatencyMatrix {
        &self.latency
    }

    /// The jitter model.
    pub fn jitter(&self) -> Jitter {
        self.jitter
    }

    /// Egress bandwidth of `node` in bits/second.
    pub fn egress_bps(&self, node: usize) -> u64 {
        self.egress_bps[node]
    }

    /// The CPU cost model.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// Whether per-pair FIFO delivery is enforced.
    pub fn fifo(&self) -> bool {
        self.fifo
    }

    /// Nanoseconds needed to serialize `wire_bytes` onto `node`'s link.
    pub fn serialize_ns(&self, node: usize, wire_bytes: usize) -> u64 {
        let bps = self.egress_bps[node];
        if bps == u64::MAX {
            return 0;
        }
        // bits * 1e9 / bps, in u128 to avoid overflow.
        ((wire_bytes as u128 * 8 * 1_000_000_000) / bps as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_is_cheap_and_symmetric() {
        let t = Topology::lan(4);
        assert_eq!(t.n(), 4);
        assert_eq!(t.latency().base_ns(0, 1), 200_000);
        assert_eq!(t.serialize_ns(0, 1_000_000), 0, "unlimited bandwidth");
        assert_eq!(t.cost().cost_ns(100), 0);
    }

    #[test]
    fn aws_matrix_is_symmetric_and_regional() {
        for (a, row) in AWS_REGION_LATENCY_MS.iter().enumerate() {
            for (b, &ms) in row.iter().enumerate() {
                assert_eq!(ms, AWS_REGION_LATENCY_MS[b][a]);
            }
        }
        let t = Topology::aws_geo(16);
        // Nodes 0 and 8 share a region (round-robin): intra-region latency.
        assert_eq!(t.latency().base_ns(0, 8), 1_000_000);
        // Node 0 (N.Va) to node 6 (Singapore): long haul.
        assert_eq!(t.latency().base_ns(0, 6), 110_000_000);
    }

    #[test]
    fn cps_shares_bandwidth_between_colocated_processes() {
        let t = Topology::cps(30, 15); // 2 processes per host
        assert_eq!(t.egress_bps(0), 50_000_000);
        let t = Topology::cps(15, 15); // exclusive host
        assert_eq!(t.egress_bps(0), 100_000_000);
        // 16 processes, 15 hosts: host 0 has two.
        let t = Topology::cps(16, 15);
        assert_eq!(t.egress_bps(0), 50_000_000);
        assert_eq!(t.egress_bps(1), 100_000_000);
    }

    #[test]
    fn cps_colocated_latency_lower() {
        let t = Topology::cps(30, 15);
        assert!(t.latency().base_ns(0, 15) < t.latency().base_ns(0, 1));
    }

    #[test]
    fn serialize_ns_scales_with_bytes_and_bandwidth() {
        let t = Topology::lan(2).with_uniform_egress_bps(8_000_000); // 1 MB/s
        assert_eq!(t.serialize_ns(0, 1000), 1_000_000); // 1 KB -> 1 ms
        assert_eq!(t.serialize_ns(0, 0), 0);
    }

    #[test]
    fn cost_model_affine() {
        let c = CostModel { per_message_ns: 100, per_byte_ns: 2 };
        assert_eq!(c.cost_ns(50), 200);
        assert_eq!(CostModel::FREE.cost_ns(1_000_000), 0);
    }

    #[test]
    fn builders_apply() {
        let t = Topology::lan(3)
            .with_fifo(true)
            .with_cost(CostModel { per_message_ns: 5, per_byte_ns: 1 });
        assert!(t.fifo());
        assert_eq!(t.cost().cost_ns(5), 10);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn cps_zero_hosts_rejected() {
        let _ = Topology::cps(4, 0);
    }
}
