//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §3 for the index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results). This library
//! holds what they share: protocol runners over configured testbeds, the
//! paper's parameter presets, and plain-text table/CSV rendering.
//!
//! Absolute numbers are not expected to match the paper (its testbeds
//! were real EC2/Raspberry-Pi deployments; ours is a calibrated
//! simulator) — the *shapes* are: who wins, by what factor, and where
//! the crossovers sit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod regression;

use delphi_baselines::{AadNode, AcsNode};
use delphi_core::{DelphiConfig, DelphiNode, OracleService, VectorOracleService};
use delphi_primitives::{EpochConfig, EpochOutcome, FlushPolicy, Mux, NodeId, Protocol};
use delphi_sim::{
    run_sharded, BatchSavings, EpochThroughput, RunReport, SimJob, Simulation, Topology,
};
use delphi_workloads::{EpochFeed, MultiAssetConfig, MultiAssetFeed};

/// One measured protocol execution.
#[derive(Clone, Copy, Debug)]
pub struct BenchPoint {
    /// System size.
    pub n: usize,
    /// Simulated latency in milliseconds.
    pub runtime_ms: f64,
    /// Total wire traffic in MiB (payload + framing, all nodes).
    pub wire_mib: f64,
    /// Total messages sent.
    pub msgs: u64,
    /// Output spread among honest nodes (agreement quality).
    pub spread: f64,
}

impl BenchPoint {
    fn from_report(n: usize, report: &RunReport<f64>) -> BenchPoint {
        let outs: Vec<f64> = report.honest_outputs().copied().collect();
        let spread = if outs.is_empty() {
            f64::NAN
        } else {
            outs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - outs.iter().copied().fold(f64::INFINITY, f64::min)
        };
        BenchPoint {
            n,
            runtime_ms: report.completion_ms().unwrap_or(f64::NAN),
            wire_mib: report.metrics.total_wire_mib(),
            msgs: report.metrics.total_msgs(),
            spread,
        }
    }
}

/// The paper's oracle-network Delphi parameters (§VI-A / Fig. 6a).
///
/// `rho0` varies between figures (10$ in Fig. 6a, 2$ in Fig. 6b).
pub fn oracle_config(n: usize, rho0: f64) -> DelphiConfig {
    DelphiConfig::builder(n)
        .space(0.0, 100_000.0)
        .rho0(rho0)
        .delta_max(2000.0)
        .epsilon(2.0)
        .build()
        .expect("paper oracle parameters are valid")
}

/// The paper's CPS Delphi parameters (§VI-B / Fig. 6c).
pub fn cps_config(n: usize) -> DelphiConfig {
    DelphiConfig::builder(n)
        .space(-10_000.0, 10_000.0)
        .rho0(0.5)
        .delta_max(50.0)
        .epsilon(0.5)
        .build()
        .expect("paper CPS parameters are valid")
}

/// Evenly spreads `n` inputs over `[center − δ/2, center + δ/2]`.
pub fn spread_inputs(n: usize, center: f64, delta: f64) -> Vec<f64> {
    if n == 1 {
        return vec![center];
    }
    (0..n).map(|i| center - delta / 2.0 + delta * i as f64 / (n as f64 - 1.0)).collect()
}

/// Runs Delphi on `topology` with the given inputs.
pub fn run_delphi(cfg: &DelphiConfig, topology: Topology, inputs: &[f64], seed: u64) -> BenchPoint {
    let n = cfg.n();
    assert_eq!(inputs.len(), n);
    let nodes = NodeId::all(n)
        .map(|id| DelphiNode::new(cfg.clone(), id, inputs[id.index()]).boxed())
        .collect();
    let report = Simulation::new(topology).seed(seed).run(nodes);
    assert!(report.all_honest_finished(), "Delphi run stalled: {:?}", report.stop);
    BenchPoint::from_report(n, &report)
}

/// Runs the Abraham et al. baseline with `rounds = ⌈log2(Δ/ε)⌉`.
pub fn run_aad(n: usize, topology: Topology, inputs: &[f64], rounds: u16, seed: u64) -> BenchPoint {
    let t = (n - 1) / 3;
    let nodes = NodeId::all(n)
        .map(|id| AadNode::new(id, n, t, inputs[id.index()], rounds).boxed())
        .collect();
    let report = Simulation::new(topology).seed(seed).run(nodes);
    assert!(report.all_honest_finished(), "AAD run stalled: {:?}", report.stop);
    BenchPoint::from_report(n, &report)
}

/// Runs the FIN-style ACS baseline.
pub fn run_acs(n: usize, topology: Topology, inputs: &[f64], seed: u64) -> BenchPoint {
    let t = (n - 1) / 3;
    let nodes = NodeId::all(n)
        .map(|id| AcsNode::new(id, n, t, inputs[id.index()], b"bench-coin").boxed())
        .collect();
    let report = Simulation::new(topology).seed(seed).run(nodes);
    assert!(report.all_honest_finished(), "ACS run stalled: {:?}", report.stop);
    BenchPoint::from_report(n, &report)
}

/// One asset's outcome inside a multi-asset run.
#[derive(Clone, Debug)]
pub struct AssetPoint {
    /// Asset name (instance-id order of the basket).
    pub name: String,
    /// Honest-output spread of the *batched* (multiplexed) run.
    pub spread: f64,
    /// Simulated latency of the asset's own unbatched run, milliseconds.
    pub runtime_ms: f64,
}

/// Result of a multi-asset Delphi run: per-asset agreement quality plus
/// the transport cost of batched (one multiplexed mesh) vs unbatched (one
/// mesh per asset) deployment.
#[derive(Clone, Debug)]
pub struct MultiAssetPoint {
    /// System size.
    pub n: usize,
    /// Per-asset outcomes, in basket order.
    pub per_asset: Vec<AssetPoint>,
    /// Batched-vs-unbatched frame/byte comparison.
    pub savings: BatchSavings,
}

/// Runs a multi-asset Delphi minute twice over `topology` — once as
/// independent per-asset meshes (sharded across `shards` worker threads)
/// and once multiplexed+batched over a single mesh — and reports per-asset
/// agreement plus the batching savings.
///
/// Every asset uses `cfg`'s agreement parameters; inputs come from one
/// minute of the basket's feeds.
///
/// # Panics
///
/// Panics if any run stalls or an asset misses ε-agreement bounds checked
/// by the underlying protocols.
pub fn run_multi_asset_delphi(
    cfg: &DelphiConfig,
    basket: MultiAssetConfig,
    topology: Topology,
    seed: u64,
    shards: usize,
) -> MultiAssetPoint {
    let n = cfg.n();
    let mut feed = MultiAssetFeed::new(basket, seed);
    let names: Vec<String> = feed.names().map(str::to_string).collect();
    let minute = feed.next_minute(n);
    let inputs: Vec<Vec<f64>> = minute.into_iter().map(|a| a.inputs).collect();

    // Unbatched: one simulation per asset, sharded across worker threads.
    let jobs: Vec<SimJob<f64>> = inputs
        .iter()
        .enumerate()
        .map(|(a, asset_inputs)| {
            let cfg = cfg.clone();
            let asset_inputs = asset_inputs.clone();
            SimJob::new(Simulation::new(topology.clone()).seed(seed + a as u64), move || {
                NodeId::all(cfg.n())
                    .map(|id| DelphiNode::new(cfg.clone(), id, asset_inputs[id.index()]).boxed())
                    .collect()
            })
        })
        .collect();
    let unbatched = run_sharded(jobs, shards);
    for (report, name) in unbatched.iter().zip(&names) {
        assert!(report.all_honest_finished(), "unbatched {name} stalled: {:?}", report.stop);
    }

    // Batched: all assets multiplexed over one mesh; envelopes of one step
    // share one frame per destination.
    let mux_nodes: Vec<Box<dyn Protocol<Output = Vec<f64>>>> = NodeId::all(n)
        .map(|id| {
            let instances: Vec<DelphiNode> = inputs
                .iter()
                .map(|asset_inputs| DelphiNode::new(cfg.clone(), id, asset_inputs[id.index()]))
                .collect();
            Box::new(Mux::new(instances)) as Box<dyn Protocol<Output = Vec<f64>>>
        })
        .collect();
    let batched = Simulation::new(topology).seed(seed).run(mux_nodes);
    assert!(batched.all_honest_finished(), "batched multi-asset run stalled: {:?}", batched.stop);

    let savings = BatchSavings::compare(unbatched.iter().map(|r| &r.metrics), &batched.metrics);
    let per_asset = names
        .into_iter()
        .enumerate()
        .map(|(a, name)| {
            let outs: Vec<f64> = batched.honest_outputs().map(|v| v[a]).collect();
            let spread = outs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - outs.iter().copied().fold(f64::INFINITY, f64::min);
            AssetPoint {
                name,
                spread,
                runtime_ms: unbatched[a].completion_ms().unwrap_or(f64::NAN),
            }
        })
        .collect();
    MultiAssetPoint { n, per_asset, savings }
}

/// One measured epoch-stream execution: sustained throughput plus
/// stream-quality facts the acceptance checks assert on.
#[derive(Clone, Copy, Debug)]
pub struct EpochSimPoint {
    /// Throughput summary (agreements/s, bytes and frames per agreement).
    pub throughput: EpochThroughput,
    /// Worst per-(epoch, asset) output spread across honest nodes.
    pub worst_spread: f64,
    /// Epoch-batch entries flushed by all nodes (envelope count — equal
    /// across flush policies for schedule-independent workloads).
    pub sent_entries: u64,
    /// Most epochs any node held resident at once (live-window bound).
    pub peak_resident: usize,
    /// Epochs any node skipped (0 in honest runs).
    pub stale_epochs: u64,
    /// Protocol rounds advanced across all nodes (from the shared round
    /// probe): a scalar basket pays `(l_max+1)·r_max` per *asset* per
    /// epoch, a vector basket pays it once per epoch.
    pub rounds: u64,
}

/// Builds node `me`'s streaming price source over `feed`, caching one
/// epoch's inputs at a time: the oracle service asks per `(epoch, asset)`
/// pair, and regenerating the whole basket minute per lookup would
/// multiply the sampling work by the basket size.
pub fn feed_price_source(
    feed: EpochFeed,
    me: NodeId,
    n: usize,
) -> delphi_core::oracle::PriceSource {
    let mut cache: Option<(u32, Vec<Vec<f64>>)> = None;
    Box::new(move |epoch, asset| {
        if cache.as_ref().map(|(e, _)| *e) != Some(epoch.0) {
            cache = Some((epoch.0, feed.inputs(epoch.0, n)));
        }
        cache.as_ref().expect("just filled").1[asset.index()][me.index()]
    })
}

/// Mirror of one node's sans-io epoch counters, updated on every protocol
/// call so the numbers survive the simulator consuming the node.
#[derive(Clone, Copy, Debug, Default)]
struct ProbeData {
    stats: delphi_primitives::EpochStats,
    entries: u64,
}

/// The epoch counters both oracle services expose, so one probe wrapper
/// serves the scalar and the vector lane.
trait EpochCounters {
    fn epoch_stats(&self) -> delphi_primitives::EpochStats;
    fn entries(&self) -> u64;
}

impl EpochCounters for OracleService {
    fn epoch_stats(&self) -> delphi_primitives::EpochStats {
        self.stats()
    }
    fn entries(&self) -> u64 {
        self.sent_entries()
    }
}

impl EpochCounters for VectorOracleService {
    fn epoch_stats(&self) -> delphi_primitives::EpochStats {
        self.stats()
    }
    fn entries(&self) -> u64 {
        self.sent_entries()
    }
}

/// Oracle-service wrapper exporting its counters through a shared cell.
struct ProbedOracle<S> {
    inner: S,
    probe: std::sync::Arc<std::sync::Mutex<ProbeData>>,
}

impl<S: EpochCounters> ProbedOracle<S> {
    fn sync(&self) {
        *self.probe.lock().expect("probe") =
            ProbeData { stats: self.inner.epoch_stats(), entries: self.inner.entries() };
    }
}

impl<S> Protocol for ProbedOracle<S>
where
    S: Protocol<Output = Vec<delphi_primitives::EpochEvent<f64>>> + EpochCounters,
{
    type Output = Vec<delphi_primitives::EpochEvent<f64>>;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn start(&mut self) -> Vec<delphi_primitives::Envelope> {
        let out = self.inner.start();
        self.sync();
        out
    }
    fn on_message(&mut self, from: NodeId, payload: &[u8]) -> Vec<delphi_primitives::Envelope> {
        let out = self.inner.on_message(from, payload);
        self.sync();
        out
    }
    fn on_tick(&mut self) -> Vec<delphi_primitives::Envelope> {
        let out = self.inner.on_tick();
        self.sync();
        out
    }
    fn output(&self) -> Option<Self::Output> {
        self.inner.output()
    }
    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Runs a streaming-oracle minute sweep in the simulator: `n` nodes agree
/// on the basket `feed` quotes, `epochs` consecutive times, `depth` epochs
/// in flight under a `window`-epoch live window.
///
/// With an adaptive `flush` policy the simulation's tick interval is the
/// policy's `max_delay` (per-step runs need no tick source).
///
/// # Panics
///
/// Panics if any honest node fails to complete the stream — the run is
/// the acceptance gate for the epoch machinery, not a best-effort sweep —
/// or if `epoch_cfg` disagrees with the feed's basket size.
pub fn run_epoch_delphi(
    cfg: &DelphiConfig,
    feed: &EpochFeed,
    epoch_cfg: EpochConfig,
    flush: FlushPolicy,
    topology: Topology,
    seed: u64,
) -> EpochSimPoint {
    run_epoch_delphi_sharded(cfg, feed, epoch_cfg, flush, topology, seed, 1)
}

/// [`run_epoch_delphi`] with a `recv_shards`-way sharded receive path:
/// senders flush per `(destination, shard)` with tagged envelopes and the
/// simulator runs one receive CPU lane per shard, modelling the TCP
/// runtime's sharded dispatch (`RunOptions::recv_shards`) — the
/// fig_throughput shard sweep runs through here.
///
/// # Panics
///
/// As [`run_epoch_delphi`], plus `recv_shards == 0`.
pub fn run_epoch_delphi_sharded(
    cfg: &DelphiConfig,
    feed: &EpochFeed,
    epoch_cfg: EpochConfig,
    flush: FlushPolicy,
    topology: Topology,
    seed: u64,
    recv_shards: usize,
) -> EpochSimPoint {
    run_epoch_delphi_full_sharded(cfg, feed, epoch_cfg, flush, topology, seed, recv_shards, None)
}

/// [`run_epoch_delphi_sharded`] with per-node *send* CPU lanes as well:
/// `send_shards = Some(k)` adds `k` egress lanes per node, each costed on
/// the encode bytes of the envelopes whose shard class maps to it —
/// modelling the TCP runtime's sharded egress pipeline
/// (`RunOptions::send_shards`). `None` leaves sends serial on the link,
/// exactly as [`run_epoch_delphi_sharded`] (the legacy sweep numbers).
///
/// # Panics
///
/// As [`run_epoch_delphi_sharded`], plus `send_shards == Some(0)`.
#[allow(clippy::too_many_arguments)]
pub fn run_epoch_delphi_full_sharded(
    cfg: &DelphiConfig,
    feed: &EpochFeed,
    epoch_cfg: EpochConfig,
    flush: FlushPolicy,
    topology: Topology,
    seed: u64,
    recv_shards: usize,
    send_shards: Option<usize>,
) -> EpochSimPoint {
    let n = cfg.n();
    let assets = feed.assets();
    assert_eq!(usize::from(epoch_cfg.assets), assets, "epoch config vs basket size");
    let mut probes = Vec::with_capacity(n);
    let mut round_probes = Vec::with_capacity(n);
    let nodes: Vec<Box<dyn Protocol<Output = Vec<delphi_primitives::EpochEvent<f64>>>>> =
        NodeId::all(n)
            .map(|id| {
                let rounds = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
                round_probes.push(rounds.clone());
                let inner = OracleService::from_parts_probed(
                    cfg.clone(),
                    id,
                    epoch_cfg,
                    flush,
                    recv_shards,
                    feed_price_source(feed.clone(), id, n),
                    rounds,
                );
                let probe = std::sync::Arc::new(std::sync::Mutex::new(ProbeData::default()));
                probes.push(probe.clone());
                Box::new(ProbedOracle { inner, probe })
                    as Box<dyn Protocol<Output = Vec<delphi_primitives::EpochEvent<f64>>>>
            })
            .collect();
    let mut sim = Simulation::new(topology).seed(seed).recv_shards(recv_shards);
    if let Some(lanes) = send_shards {
        sim = sim.send_shards(lanes);
    }
    if let FlushPolicy::Adaptive { max_delay, .. } = flush {
        sim = sim.tick_interval_ns(max_delay.as_nanos().max(1) as u64);
    }
    let report = sim.run(nodes);
    assert!(
        report.all_honest_finished(),
        "epoch stream stalled ({:?}): {epoch_cfg:?}",
        report.stop
    );
    measure_epoch_run(&report, epoch_cfg.epochs, assets, &probes, &round_probes)
}

/// [`run_epoch_delphi`] with every epoch's basket as ONE vector-valued
/// agreement instance (`VectorOracleService`): a single bundle exchange
/// and one quorum walk per round for the whole basket. Events are already
/// flattened to the scalar per-asset shape, so throughput and spread are
/// computed identically to the scalar runners — the comparison the
/// vector-vs-scalar fig sweep rides on.
///
/// # Panics
///
/// As [`run_epoch_delphi`].
pub fn run_epoch_vector_delphi(
    cfg: &DelphiConfig,
    feed: &EpochFeed,
    epoch_cfg: EpochConfig,
    flush: FlushPolicy,
    topology: Topology,
    seed: u64,
) -> EpochSimPoint {
    let n = cfg.n();
    let assets = feed.assets();
    assert_eq!(usize::from(epoch_cfg.assets), assets, "epoch config vs basket size");
    let mut probes = Vec::with_capacity(n);
    let mut round_probes = Vec::with_capacity(n);
    let nodes: Vec<Box<dyn Protocol<Output = Vec<delphi_primitives::EpochEvent<f64>>>>> =
        NodeId::all(n)
            .map(|id| {
                let rounds = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
                round_probes.push(rounds.clone());
                let inner = VectorOracleService::from_parts_probed(
                    cfg.clone(),
                    id,
                    epoch_cfg,
                    flush,
                    feed_price_source(feed.clone(), id, n),
                    rounds,
                );
                let probe = std::sync::Arc::new(std::sync::Mutex::new(ProbeData::default()));
                probes.push(probe.clone());
                Box::new(ProbedOracle { inner, probe })
                    as Box<dyn Protocol<Output = Vec<delphi_primitives::EpochEvent<f64>>>>
            })
            .collect();
    let mut sim = Simulation::new(topology).seed(seed);
    if let FlushPolicy::Adaptive { max_delay, .. } = flush {
        sim = sim.tick_interval_ns(max_delay.as_nanos().max(1) as u64);
    }
    let report = sim.run(nodes);
    assert!(
        report.all_honest_finished(),
        "vector epoch stream stalled ({:?}): {epoch_cfg:?}",
        report.stop
    );
    measure_epoch_run(&report, epoch_cfg.epochs, assets, &probes, &round_probes)
}

/// Shared tail of the epoch runners: per-(epoch, asset) spread across
/// honest nodes plus the probed counters, folded into one point.
fn measure_epoch_run(
    report: &RunReport<Vec<delphi_primitives::EpochEvent<f64>>>,
    epochs: u32,
    assets: usize,
    probes: &[std::sync::Arc<std::sync::Mutex<ProbeData>>],
    round_probes: &[std::sync::Arc<std::sync::atomic::AtomicU64>],
) -> EpochSimPoint {
    let streams: Vec<&Vec<delphi_primitives::EpochEvent<f64>>> = report.honest_outputs().collect();
    let mut worst_spread = 0.0f64;
    for e in 0..epochs as usize {
        for a in 0..assets {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for events in &streams {
                if let EpochOutcome::Agreed(values) = &events[e].outcome {
                    lo = lo.min(values[a]);
                    hi = hi.max(values[a]);
                }
            }
            if lo.is_finite() {
                worst_spread = worst_spread.max(hi - lo);
            }
        }
    }
    let data: Vec<ProbeData> = probes.iter().map(|p| *p.lock().expect("probe")).collect();
    EpochSimPoint {
        throughput: EpochThroughput::from_report(report),
        worst_spread,
        sent_entries: data.iter().map(|d| d.entries).sum(),
        peak_resident: data.iter().map(|d| d.stats.peak_resident).max().unwrap_or(0),
        stale_epochs: data.iter().map(|d| d.stats.stale_epochs).sum(),
        rounds: round_probes.iter().map(|r| r.load(std::sync::atomic::Ordering::Relaxed)).sum(),
    }
}

/// Appends one benchmark record to the file named by `BENCH_JSON` using
/// the same JSON-Lines schema the vendored criterion stub emits, so the
/// `bench-gate` regression gate reads figure metrics and micro benches
/// alike. `value_ns` is the metric in "lower is better" orientation
/// (latency in ns, bytes or frames per agreement, ...). No-op when the
/// variable is unset.
pub fn emit_bench_json(id: &str, value_ns: f64) {
    let Some(path) = std::env::var_os("BENCH_JSON") else { return };
    use std::io::Write as _;
    let line = format!(
        "{{\"id\":\"{id}\",\"median_ns\":{value_ns},\"min_ns\":{value_ns},\
         \"max_ns\":{value_ns},\"iters\":1,\"samples\":1}}\n"
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: BENCH_JSON append failed: {e}");
    }
}

/// `true` when `--quick` was passed: trims sweeps for CI-speed runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Fits the growth exponent `k` of `y ≈ c·n^k` by least squares in
/// log-log space.
///
/// # Panics
///
/// Panics on fewer than two points or non-positive data.
pub fn growth_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "log-log fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// A minimal aligned-text table with CSV output.
#[derive(Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (comma-separated, no quoting — cells are numeric).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_inputs_covers_delta() {
        let xs = spread_inputs(5, 100.0, 10.0);
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 95.0);
        assert_eq!(xs[4], 105.0);
        assert_eq!(spread_inputs(1, 7.0, 10.0), vec![7.0]);
    }

    #[test]
    fn growth_exponent_recovers_powers() {
        let quad: Vec<(f64, f64)> = (2..8).map(|n| (n as f64, 3.0 * (n * n) as f64)).collect();
        assert!((growth_exponent(&quad) - 2.0).abs() < 1e-9);
        let cubic: Vec<(f64, f64)> = (2..8).map(|n| (n as f64, 0.5 * (n * n * n) as f64)).collect();
        assert!((growth_exponent(&cubic) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = TextTable::new(&["n", "ms"]);
        t.row(&["16".into(), "2300.5".into()]);
        let text = t.render();
        assert!(text.contains("n"));
        assert!(text.contains("2300.5"));
        assert!(t.to_csv().starts_with("n,ms\n16,2300.5\n"));
    }

    #[test]
    fn delphi_runner_smoke() {
        let cfg = oracle_config(4, 10.0);
        let inputs = spread_inputs(4, 40_000.0, 20.0);
        let p = run_delphi(&cfg, Topology::lan(4), &inputs, 1);
        assert_eq!(p.n, 4);
        assert!(p.runtime_ms > 0.0);
        assert!(p.wire_mib > 0.0);
        assert!(p.spread <= 2.0);
    }

    #[test]
    fn multi_asset_runner_batches_and_agrees() {
        let cfg = oracle_config(4, 10.0);
        let point =
            run_multi_asset_delphi(&cfg, MultiAssetConfig::synthetic(3), Topology::lan(4), 5, 2);
        assert_eq!(point.n, 4);
        assert_eq!(point.per_asset.len(), 3);
        for a in &point.per_asset {
            assert!(a.spread <= cfg.epsilon() + 1e-9, "{}: spread {}", a.name, a.spread);
            assert!(a.runtime_ms > 0.0);
        }
        assert!(
            point.savings.batched_msgs < point.savings.unbatched_msgs,
            "batching must cut frames: {}",
            point.savings
        );
        assert!(
            point.savings.batched_wire_bytes < point.savings.unbatched_wire_bytes,
            "batching must cut wire bytes: {}",
            point.savings
        );
    }

    #[test]
    fn epoch_runner_streams_and_adaptive_flush_saves_frames() {
        let cfg = oracle_config(4, 2.0);
        let feed = EpochFeed::new(MultiAssetConfig::synthetic(2), 3);
        let epoch_cfg = EpochConfig::new(6, 2, 2, 4, cfg.t());
        let step =
            run_epoch_delphi(&cfg, &feed, epoch_cfg, FlushPolicy::PerStep, Topology::lan(4), 1);
        let adpt =
            run_epoch_delphi(&cfg, &feed, epoch_cfg, FlushPolicy::adaptive(), Topology::lan(4), 1);
        for p in [&step, &adpt] {
            assert_eq!(p.throughput.agreements, 12, "6 epochs x 2 assets");
            assert!(p.worst_spread <= cfg.epsilon() + 1e-9, "spread {}", p.worst_spread);
            assert_eq!(p.stale_epochs, 0);
            assert!(p.peak_resident <= 4, "live-window bound");
            assert!(p.throughput.agreements_per_sec() > 0.0);
        }
        assert!(
            adpt.throughput.frames_per_agreement() < step.throughput.frames_per_agreement(),
            "adaptive {} vs per-step {} frames/agreement",
            adpt.throughput.frames_per_agreement(),
            step.throughput.frames_per_agreement()
        );
    }

    #[test]
    fn baseline_runners_smoke() {
        let inputs = spread_inputs(4, 40_000.0, 20.0);
        let a = run_aad(4, Topology::lan(4), &inputs, 6, 1);
        assert!(a.runtime_ms > 0.0);
        let c = run_acs(4, Topology::lan(4), &inputs, 1);
        assert!(c.runtime_ms > 0.0);
        assert_eq!(c.spread, 0.0, "ACS reaches exact agreement");
    }
}
